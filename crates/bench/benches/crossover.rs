//! Naïve enumeration versus Antidote as the poisoning budget grows — the
//! quantitative version of §2's intractability argument. Enumeration cost
//! rises combinatorially with `n` while the abstract interpreter's cost is
//! essentially flat; the crossover sits at tiny budgets even for a
//! 24-point training set.

use antidote_baselines::enumerate_robustness;
use antidote_core::{Certifier, DomainKind};
use antidote_data::synth::{gaussian_blobs, BlobSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn tiny_dataset() -> antidote_data::Dataset {
    gaussian_blobs(
        &BlobSpec {
            means: vec![vec![0.0], vec![8.0]],
            stds: vec![vec![1.0], vec![1.0]],
            per_class: 12,
            quantum: Some(0.5),
        },
        11,
    )
}

fn bench_crossover(c: &mut Criterion) {
    let ds = tiny_dataset();
    let x = vec![0.5];
    for n in [1usize, 2, 3] {
        let mut g = c.benchmark_group(format!("crossover/24pts_n{n}"));
        g.bench_function("enumeration", |b| {
            b.iter(|| black_box(enumerate_robustness(&ds, &x, 1, n, u64::MAX)))
        });
        let certifier = Certifier::new(&ds).depth(1).domain(DomainKind::Disjuncts);
        g.bench_function("antidote", |b| {
            b.iter(|| black_box(certifier.certify(&x, n)))
        });
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_crossover
}
criterion_main!(benches);
