//! `bestSplit#` hot-loop microbenchmark: dense versus sparse candidate
//! sweep, and the per-certify-call memo on versus off, with a
//! machine-readable `BENCH_split.json` snapshot so future learner
//! changes have a dedicated hot-loop artifact next to the sweep-level
//! `BENCH_sweep.json`.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p antidote-bench --bench best_split [-- --iters K]
//! ```
//!
//! Two layers are measured:
//!
//! * **Sweep kernel** — `best_split_abs` on a dense base (the whole
//!   training set: walks the dataset's precomputed per-feature value
//!   order) and on a sparse fragment (below the `dense_enough`
//!   threshold: gathers and sorts its own rows). These are the two code
//!   paths every learner step bottoms out in.
//! * **Memoized certification** — one depth-3 disjunctive certify with
//!   the `bestSplit#` memo on and off. Depth ≥ 3 is where recurring
//!   `⟨T, n⟩` states appear (same-feature threshold restrictions
//!   compose), so this is the configuration that demonstrates — and
//!   pins, via the asserted hit count — the memo actually firing. Both
//!   runs must return the identical verdict.

use antidote_core::engine::ExecContext;
use antidote_core::{best_split_abs, Certifier, DomainKind};
use antidote_data::synth::{gaussian_blobs, BlobSpec};
use antidote_data::{Dataset, Subset};
use antidote_domains::{AbstractSet, CprobTransformer};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    iters: usize,
}

impl Options {
    fn parse() -> Options {
        let mut opts = Options { iters: 200 };
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--iters" => {
                    opts.iters = it
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or_else(|| panic!("--iters needs an integer value"))
                        .max(10);
                }
                "--bench" => {} // passed by `cargo bench`
                other => panic!("unknown flag '{other}'"),
            }
        }
        opts
    }
}

/// The stock 200-row two-cluster dataset (same family as
/// `parallel_sweep`'s workload).
fn dataset() -> Dataset {
    gaussian_blobs(
        &BlobSpec {
            means: vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            stds: vec![vec![1.5, 1.5], vec![1.5, 1.5]],
            per_class: 100,
            quantum: Some(0.1),
        },
        7,
    )
}

/// Best-of-`iters` wall time of one `best_split_abs` call, in
/// microseconds.
fn time_sweep(ds: &Dataset, a: &AbstractSet, iters: usize) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(best_split_abs(ds, black_box(a), CprobTransformer::Optimal));
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let opts = Options::parse();
    let ds = dataset();

    // Dense path: the full training set walks the precomputed value
    // order (|T| = |dataset| is far above the 1/8 density threshold).
    let dense = AbstractSet::full(&ds, 8);
    let dense_us = time_sweep(&ds, &dense, opts.iters);
    // Sparse path: a 20-row fragment (1/10 of the dataset) gathers and
    // sorts its own rows.
    let sparse = AbstractSet::new(
        Subset::from_indices(&ds, (0..20).map(|i| i * 9).collect()),
        4,
    );
    assert!(
        sparse.len() * 8 < ds.len(),
        "fragment must take the sparse path"
    );
    let sparse_us = time_sweep(&ds, &sparse, opts.iters);
    println!(
        "best_split_abs: dense {dense_us:.1}us, sparse {sparse_us:.1}us (best of {} iters)",
        opts.iters
    );

    // Memo on/off at depth 3, where recurring frontier states exist.
    // The reps are interleaved (one memo run, then one memo-free run,
    // five pairs) so clock drift and noisy neighbours hit both sides
    // equally — the memo/no-memo *ratio* is what the regression assert
    // below pins, and phase-ordered reps were measured to bias it by
    // several percent on busy hosts.
    let depth = 3;
    let n = 16;
    let x = [5.0, 5.0];
    let one_rep = |memo: bool| {
        let certifier = Certifier::new(&ds)
            .depth(depth)
            .domain(DomainKind::Disjuncts)
            .memo(memo);
        let ctx = ExecContext::sequential();
        let t0 = Instant::now();
        let out = certifier.certify_in(&x, n, &ctx);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        (
            ms,
            out,
            ctx.metrics().split_memo_hits(),
            ctx.metrics().split_memo_misses(),
            ctx.metrics().interner_hits(),
            ctx.metrics().arena_resets(),
            ctx.metrics().arena_bytes(),
            ctx.metrics().simd_lanes(),
        )
    };
    let mut memo_ms = f64::MAX;
    let mut no_memo_ms = f64::MAX;
    let mut memo_last = None;
    let mut plain_last = None;
    for _ in 0..5 {
        let (ms, out, hits, misses, interner, resets, bytes, lanes) = one_rep(true);
        memo_ms = memo_ms.min(ms);
        memo_last = Some((out, hits, misses, interner, resets, bytes, lanes));
        let (ms, out, hits, ..) = one_rep(false);
        no_memo_ms = no_memo_ms.min(ms);
        plain_last = Some((out, hits));
    }
    let (memo_out, hits, misses, interner_hits, arena_resets, arena_bytes, simd_lanes) =
        memo_last.expect("five rep pairs ran");
    let (plain_out, plain_hits) = plain_last.expect("five rep pairs ran");
    assert_eq!(
        memo_out.verdict, plain_out.verdict,
        "memo on/off must agree on the verdict"
    );
    assert_eq!(memo_out.label, plain_out.label);
    assert!(hits > 0, "the depth-3 config must exercise memo hits");
    assert_eq!(plain_hits, 0, "--no-memo must fully disarm the memo");
    // The memo must never cost more than it saves: with insert
    // admission depth-gated (`SplitMemo::INSERT_DEPTH_LIMIT`), the
    // per-probe overhead is a table lookup, and a depth-3 run no longer
    // retains thousands of dead deep entries, so memoized wall time
    // must stay within noise of the memo-free run.
    assert!(
        memo_ms <= no_memo_ms * 1.05,
        "bestSplit# memo regression: memo {memo_ms:.2}ms vs no-memo {no_memo_ms:.2}ms"
    );
    println!(
        "certify depth={depth} n={n}: memo {memo_ms:.2}ms ({hits} hit(s) / {misses} miss(es), \
         {interner_hits} interner hit(s)) vs no-memo {no_memo_ms:.2}ms"
    );

    let json = format!(
        r#"{{
  "bench": "best_split",
  "dataset_rows": {},
  "iters": {},
  "dense_rows": {},
  "sparse_rows": {},
  "dense_us": {dense_us:.3},
  "sparse_us": {sparse_us:.3},
  "certify_depth": {depth},
  "certify_n": {n},
  "certify_memo_ms": {memo_ms:.3},
  "certify_no_memo_ms": {no_memo_ms:.3},
  "split_memo_hits": {hits},
  "split_memo_misses": {misses},
  "interner_hits": {interner_hits},
  "arena_resets": {arena_resets},
  "arena_bytes": {arena_bytes},
  "simd_lanes": {simd_lanes},
  "identical_verdicts": true
}}
"#,
        ds.len(),
        opts.iters,
        dense.len(),
        sparse.len(),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_split.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
