//! Chunked word kernels for the packed [`Subset`](crate::Subset) backend.
//!
//! Every set operation the abstract domains bottom out in — AND, ANDNOT,
//! OR, popcount, subset test, first-set — is a pass over `u64` words.
//! This module provides those passes in two interchangeable forms:
//!
//! * a **vector form** (compiled under the default `simd` cargo feature):
//!   the loop is restructured into explicit [`LANES`]-wide chunks with
//!   per-lane accumulators, the shape LLVM reliably turns into `u64x4`
//!   SIMD on any target with 256-bit vectors (and clean unrolled scalar
//!   code elsewhere);
//! * a **scalar form** that compiles everywhere and is also the runtime
//!   fallback behind the `--no-simd` escape hatch.
//!
//! # Soundness
//!
//! Both forms are pure bitwise/popcount arithmetic over the same words:
//! AND/ANDNOT/OR are lane-independent, and the only reassociated
//! reduction is a sum of `u32` popcounts, which is associative and
//! commutative on the naturals. The two forms therefore return
//! *bit-identical* results on every input — not merely close ones — so
//! routing `Subset` algebra, `AbstractSet::le`, `filter_cmp`'s mask
//! application, and `prune_subsumed`'s live-word AND through the
//! dispatchers cannot change any ladder or verdict (pinned by the
//! vector-vs-scalar differential in `crates/data/tests/subset_equiv.rs`
//! and the `--no-simd` differentials in `crates/core/tests/determinism.rs`).
//!
//! # Dispatch
//!
//! Each public kernel dispatches on [`enabled`]: compile-time (`simd`
//! feature off ⇒ the vector form does not exist) and runtime (the
//! process-wide latch behind [`set_enabled`], driven by the `--no-simd`
//! CLI flag / `Certifier::simd(false)`). Because both forms are
//! bit-identical, the latch is a pure performance switch: flipping it
//! mid-run — even from another thread — can never change a result, so it
//! needs no synchronisation stronger than a relaxed atomic.

use std::sync::atomic::{AtomicBool, Ordering};

/// Lane width of the vector form: four `u64`s, one 256-bit register.
pub const LANES: usize = 4;

/// Runtime disarm latch for the vector kernels (`false` = vector form
/// allowed). Stored inverted so the zero-initialised default arms SIMD.
static DISARMED: AtomicBool = AtomicBool::new(false);

/// Whether the vector kernels are compiled in at all (the `simd` cargo
/// feature, on by default).
#[inline]
pub const fn compiled() -> bool {
    cfg!(feature = "simd")
}

/// Arms (`true`, the default) or disarms (`false`) the vector kernels at
/// runtime — the `--no-simd` escape hatch. Disarming routes every kernel
/// through the scalar fallback; results are bit-identical either way.
pub fn set_enabled(on: bool) {
    DISARMED.store(!on, Ordering::Relaxed);
}

/// Whether kernel calls currently take the vector form.
#[inline]
pub fn enabled() -> bool {
    compiled() && !DISARMED.load(Ordering::Relaxed)
}

/// The effective lane count: [`LANES`] when the vector form is armed,
/// 1 under the scalar fallback. Reported as the `simd_lanes` engine
/// metric.
#[inline]
pub fn lanes() -> usize {
    if enabled() {
        LANES
    } else {
        1
    }
}

/// `Σ popcount(a[i] & b[i])` over two equal-length slices — the fused
/// AND-popcount behind per-class counts and `filter_class`.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(feature = "simd")]
    if enabled() {
        return and_popcount_vector(a, b);
    }
    and_popcount_scalar(a, b)
}

/// Scalar form of [`and_popcount`].
pub fn and_popcount_scalar(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones()).sum()
}

/// Vector form of [`and_popcount`].
#[cfg(feature = "simd")]
pub fn and_popcount_vector(a: &[u64], b: &[u64]) -> u32 {
    let split = a.len() - a.len() % LANES;
    let mut acc = [0u32; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += (ca[l] & cb[l]).count_ones();
        }
    }
    acc.iter().sum::<u32>() + and_popcount_scalar(&a[split..], &b[split..])
}

/// `Σ popcount(a[i] & !b[i])`, with `b` words beyond `b.len()` taken as
/// zero — `|a \ b|` for canonical (trailing-zero-trimmed) word vectors of
/// different lengths.
#[inline]
pub fn andnot_popcount(a: &[u64], b: &[u64]) -> u32 {
    #[cfg(feature = "simd")]
    if enabled() {
        return andnot_popcount_vector(a, b);
    }
    andnot_popcount_scalar(a, b)
}

/// Scalar form of [`andnot_popcount`].
pub fn andnot_popcount_scalar(a: &[u64], b: &[u64]) -> u32 {
    let n = a.len().min(b.len());
    a[..n]
        .iter()
        .zip(&b[..n])
        .map(|(&x, &y)| (x & !y).count_ones())
        .sum::<u32>()
        + popcount_scalar(&a[n..])
}

/// Vector form of [`andnot_popcount`].
#[cfg(feature = "simd")]
pub fn andnot_popcount_vector(a: &[u64], b: &[u64]) -> u32 {
    let n = a.len().min(b.len());
    let split = n - n % LANES;
    let mut acc = [0u32; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += (ca[l] & !cb[l]).count_ones();
        }
    }
    acc.iter().sum::<u32>()
        + a[split..n]
            .iter()
            .zip(&b[split..n])
            .map(|(&x, &y)| (x & !y).count_ones())
            .sum::<u32>()
        + popcount(&a[n..])
}

/// Total popcount of a word slice.
#[inline]
pub fn popcount(words: &[u64]) -> u32 {
    #[cfg(feature = "simd")]
    if enabled() {
        return popcount_vector(words);
    }
    popcount_scalar(words)
}

/// Scalar form of [`popcount`].
pub fn popcount_scalar(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Vector form of [`popcount`].
#[cfg(feature = "simd")]
pub fn popcount_vector(words: &[u64]) -> u32 {
    let split = words.len() - words.len() % LANES;
    let mut acc = [0u32; LANES];
    for c in words[..split].chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += c[l].count_ones();
        }
    }
    acc.iter().sum::<u32>() + popcount_scalar(&words[split..])
}

/// Whether `a[i] & !b[i] == 0` for every word of `a`, with `b` words
/// beyond `b.len()` taken as zero — the subset test `a ⊆ b` on canonical
/// word vectors. Early-exits per chunk on the first violating group.
#[inline]
pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
    #[cfg(feature = "simd")]
    if enabled() {
        return is_subset_vector(a, b);
    }
    is_subset_scalar(a, b)
}

/// Scalar form of [`is_subset`].
pub fn is_subset_scalar(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    a[..n].iter().zip(&b[..n]).all(|(&x, &y)| x & !y == 0) && a[n..].iter().all(|&x| x == 0)
}

/// Vector form of [`is_subset`].
#[cfg(feature = "simd")]
pub fn is_subset_vector(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let split = n - n % LANES;
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        let mut escaped = 0u64;
        for l in 0..LANES {
            escaped |= ca[l] & !cb[l];
        }
        if escaped != 0 {
            return false;
        }
    }
    a[split..n]
        .iter()
        .zip(&b[split..n])
        .all(|(&x, &y)| x & !y == 0)
        && a[n..].iter().all(|&x| x == 0)
}

/// `out[i] = a[i] & b[i]` over the common prefix (`min` length result —
/// trailing words of the longer side AND to zero and are dropped by the
/// canonical trim downstream). `out` is cleared and refilled.
#[inline]
pub fn and_words(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let n = a.len().min(b.len());
    out.clear();
    out.resize(n, 0);
    #[cfg(feature = "simd")]
    if enabled() {
        and_words_vector(&a[..n], &b[..n], out);
        return;
    }
    and_words_scalar(&a[..n], &b[..n], out);
}

/// Scalar form of [`and_words`] (equal-length slices).
pub fn and_words_scalar(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
    }
}

/// Vector form of [`and_words`] (equal-length slices).
#[cfg(feature = "simd")]
pub fn and_words_vector(a: &[u64], b: &[u64], out: &mut [u64]) {
    let split = a.len() - a.len() % LANES;
    for ((co, ca), cb) in out[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            co[l] = ca[l] & cb[l];
        }
    }
    and_words_scalar(&a[split..], &b[split..], &mut out[split..]);
}

/// `out[i] = a[i] & !b[i]`, with `b` words beyond `b.len()` taken as
/// zero (those `a` words are copied through). `out` is cleared and
/// refilled to `a.len()`.
#[inline]
pub fn andnot_words(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let n = a.len().min(b.len());
    out.clear();
    out.resize(a.len(), 0);
    #[cfg(feature = "simd")]
    if enabled() {
        andnot_words_vector(&a[..n], &b[..n], &mut out[..n]);
        out[n..].copy_from_slice(&a[n..]);
        return;
    }
    andnot_words_scalar(&a[..n], &b[..n], &mut out[..n]);
    out[n..].copy_from_slice(&a[n..]);
}

/// Scalar form of [`andnot_words`] (equal-length slices).
pub fn andnot_words_scalar(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & !y;
    }
}

/// Vector form of [`andnot_words`] (equal-length slices).
#[cfg(feature = "simd")]
pub fn andnot_words_vector(a: &[u64], b: &[u64], out: &mut [u64]) {
    let split = a.len() - a.len() % LANES;
    for ((co, ca), cb) in out[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            co[l] = ca[l] & !cb[l];
        }
    }
    andnot_words_scalar(&a[split..], &b[split..], &mut out[split..]);
}

/// `out[i] = a[i] | b[i]`, with the shorter side zero-extended (`max`
/// length result). `out` is cleared and refilled.
#[inline]
pub fn or_words(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let n = short.len();
    out.clear();
    out.resize(long.len(), 0);
    #[cfg(feature = "simd")]
    if enabled() {
        or_words_vector(&long[..n], short, &mut out[..n]);
        out[n..].copy_from_slice(&long[n..]);
        return;
    }
    or_words_scalar(&long[..n], short, &mut out[..n]);
    out[n..].copy_from_slice(&long[n..]);
}

/// Scalar form of [`or_words`] (equal-length slices).
pub fn or_words_scalar(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x | y;
    }
}

/// Vector form of [`or_words`] (equal-length slices).
#[cfg(feature = "simd")]
pub fn or_words_vector(a: &[u64], b: &[u64], out: &mut [u64]) {
    let split = a.len() - a.len() % LANES;
    for ((co, ca), cb) in out[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            co[l] = ca[l] | cb[l];
        }
    }
    or_words_scalar(&a[split..], &b[split..], &mut out[split..]);
}

/// `out[i] = words[i] & mask[i]` (or `& !mask[i]` when `invert`), with
/// `mask` words beyond `mask.len()` taken as zero — the word-parallel
/// application of a prefix threshold mask in `filter_cmp`. `out` is
/// cleared and refilled to `words.len()`.
#[inline]
pub fn masked_and(words: &[u64], mask: &[u64], invert: bool, out: &mut Vec<u64>) {
    if invert {
        andnot_words(words, mask, out);
    } else {
        and_words(words, mask, out);
        // `and_words` truncates to the common prefix; a masked AND keeps
        // `words.len()` (the excess ANDs with an absent mask word = 0).
        out.resize(words.len(), 0);
    }
}

/// `acc[i] &= bits[i]` in place over equal-length slices —
/// `prune_subsumed`'s containment-accumulator AND.
#[inline]
pub fn and_in_place(acc: &mut [u64], bits: &[u64]) {
    debug_assert_eq!(acc.len(), bits.len());
    #[cfg(feature = "simd")]
    if enabled() {
        and_in_place_vector(acc, bits);
        return;
    }
    and_in_place_scalar(acc, bits);
}

/// Scalar form of [`and_in_place`].
pub fn and_in_place_scalar(acc: &mut [u64], bits: &[u64]) {
    for (a, &b) in acc.iter_mut().zip(bits) {
        *a &= b;
    }
}

/// Vector form of [`and_in_place`].
#[cfg(feature = "simd")]
pub fn and_in_place_vector(acc: &mut [u64], bits: &[u64]) {
    let split = acc.len() - acc.len() % LANES;
    for (ca, cb) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(bits[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            ca[l] &= cb[l];
        }
    }
    and_in_place_scalar(&mut acc[split..], &bits[split..]);
}

/// Index of the first non-zero word at or after `from`, if any — the
/// skip-ahead behind the counted-ones cursor ([`Subset::iter`]'s dead
/// word skipping).
///
/// [`Subset::iter`]: crate::Subset::iter
#[inline]
pub fn first_nonzero_word(words: &[u64], from: usize) -> Option<usize> {
    #[cfg(feature = "simd")]
    if enabled() {
        return first_nonzero_word_vector(words, from);
    }
    first_nonzero_word_scalar(words, from)
}

/// Scalar form of [`first_nonzero_word`].
pub fn first_nonzero_word_scalar(words: &[u64], from: usize) -> Option<usize> {
    words
        .get(from..)?
        .iter()
        .position(|&w| w != 0)
        .map(|i| from + i)
}

/// Vector form of [`first_nonzero_word`]: ORs four words at a time and
/// only bisects a group once it is known to contain a set bit.
#[cfg(feature = "simd")]
pub fn first_nonzero_word_vector(words: &[u64], from: usize) -> Option<usize> {
    let tail = words.get(from..)?;
    let split = tail.len() - tail.len() % LANES;
    for (ci, c) in tail[..split].chunks_exact(LANES).enumerate() {
        if c.iter().any(|&w| w != 0) {
            let off = ci * LANES + c.iter().position(|&w| w != 0).unwrap();
            return Some(from + off);
        }
    }
    tail[split..]
        .iter()
        .position(|&w| w != 0)
        .map(|i| from + split + i)
}

/// Global bit index of the first set bit, if any.
#[inline]
pub fn first_set(words: &[u64]) -> Option<usize> {
    let wi = first_nonzero_word(words, 0)?;
    Some(wi * 64 + words[wi].trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_round_trips() {
        assert_eq!(compiled(), cfg!(feature = "simd"));
        set_enabled(true);
        assert_eq!(enabled(), compiled());
        assert_eq!(lanes(), if compiled() { LANES } else { 1 });
        set_enabled(false);
        assert!(!enabled());
        assert_eq!(lanes(), 1);
        set_enabled(true);
    }

    #[test]
    fn kernels_agree_with_naive_semantics() {
        // Lengths straddling the lane width, incl. 0 and non-multiples.
        let a: Vec<u64> = (0..11)
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let b: Vec<u64> = (0..7)
            .map(|i| !(i as u64) ^ 0x0123_4567_89ab_cdef)
            .collect();
        for alen in 0..=a.len() {
            for blen in 0..=b.len() {
                let (x, y) = (&a[..alen], &b[..blen]);
                let at = |s: &[u64], i: usize| s.get(i).copied().unwrap_or(0);
                let naive_andnot: u32 =
                    (0..alen).map(|i| (at(x, i) & !at(y, i)).count_ones()).sum();
                assert_eq!(andnot_popcount(x, y), naive_andnot);
                assert_eq!(
                    is_subset(x, y),
                    (0..alen).all(|i| at(x, i) & !at(y, i) == 0)
                );
                let mut out = Vec::new();
                andnot_words(x, y, &mut out);
                assert_eq!(
                    out,
                    (0..alen).map(|i| at(x, i) & !at(y, i)).collect::<Vec<_>>()
                );
                or_words(x, y, &mut out);
                let n = alen.max(blen);
                assert_eq!(out, (0..n).map(|i| at(x, i) | at(y, i)).collect::<Vec<_>>());
                masked_and(x, y, false, &mut out);
                assert_eq!(
                    out,
                    (0..alen).map(|i| at(x, i) & at(y, i)).collect::<Vec<_>>()
                );
                masked_and(x, y, true, &mut out);
                assert_eq!(
                    out,
                    (0..alen).map(|i| at(x, i) & !at(y, i)).collect::<Vec<_>>()
                );
            }
            let x = &a[..alen];
            assert_eq!(popcount(x), x.iter().map(|w| w.count_ones()).sum::<u32>());
            assert_eq!(and_popcount(x, x), popcount(x));
            assert_eq!(
                first_set(x),
                x.iter()
                    .enumerate()
                    .find_map(|(i, &w)| { (w != 0).then(|| i * 64 + w.trailing_zeros() as usize) })
            );
        }
    }

    #[test]
    fn and_in_place_and_first_nonzero() {
        let mut acc = vec![!0u64; 9];
        let bits: Vec<u64> = (0..9).map(|i| 1u64 << (i * 7)).collect();
        and_in_place(&mut acc, &bits);
        assert_eq!(acc, bits);
        let mut sparse = vec![0u64; 10];
        assert_eq!(first_nonzero_word(&sparse, 0), None);
        sparse[6] = 8;
        assert_eq!(first_nonzero_word(&sparse, 0), Some(6));
        assert_eq!(first_nonzero_word(&sparse, 6), Some(6));
        assert_eq!(first_nonzero_word(&sparse, 7), None);
        assert_eq!(first_nonzero_word(&sparse, 99), None);
        assert_eq!(first_set(&sparse), Some(6 * 64 + 3));
    }
}
