//! Word-packed row-set views into a [`Dataset`].
//!
//! Every training-set fragment in the pipeline — the shrinking set held by
//! the concrete learner `DTrace`, the base set `T` of an abstract element
//! `⟨T,n⟩`, each disjunct of the disjunctive domain — is a [`Subset`]: a
//! bitset over row ids packed into `u64` words, plus cached per-class
//! counts.
//!
//! The packed representation makes the set algebra the abstract domain
//! needs word-parallel: `|T₁ \ T₂|` (joins and the partial order), `∩`
//! (meets), `∪` (joins), and `⊆` are a handful of AND/OR/ANDNOT + popcount
//! passes over `ceil(|dataset| / 64)` words instead of linear merges over
//! index vectors. Per-class counts are recomputed by AND-popcount against
//! the dataset's per-class row bitmasks ([`Dataset::class_mask`]), keeping
//! `cprob`/`ent` (and their abstract versions) O(k).
//!
//! Iteration order is unchanged from the historical sorted-`Vec`
//! representation: [`Subset::iter`] yields row ids in strictly increasing
//! order, so trace recording, counterexample minimality, and every
//! deterministic fold downstream are bit-identical to the old backend
//! (pinned by `crates/data/tests/subset_equiv.rs`).
//!
//! The word vector is kept *canonical* — no trailing zero words — so
//! structural equality (`PartialEq`) coincides with set equality no matter
//! which operations produced the two sides.

use crate::{ClassId, Dataset, RowId};

/// A threshold comparison against one feature, for
/// [`Subset::filter_cmp`]'s word-parallel restriction fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdCmp {
    /// `value ≤ τ`.
    Le,
    /// `value < τ`.
    Lt,
    /// `value > τ` (complement of [`ThresholdCmp::Le`]).
    Gt,
    /// `value ≥ τ` (complement of [`ThresholdCmp::Lt`]).
    Ge,
}

impl ThresholdCmp {
    /// Whether `v` satisfies the comparison against `tau`.
    #[inline]
    fn eval(self, v: f64, tau: f64) -> bool {
        match self {
            ThresholdCmp::Le => v <= tau,
            ThresholdCmp::Lt => v < tau,
            ThresholdCmp::Gt => v > tau,
            ThresholdCmp::Ge => v >= tau,
        }
    }

    /// `(strict, invert)` decomposition against the dataset's prefix
    /// masks: `Lt`/`Ge` query the strict (`<`) mask, and the two upper
    /// comparisons (`Gt`/`Ge`) take the complement of their lower dual.
    #[inline]
    fn mask_form(self) -> (bool, bool) {
        match self {
            ThresholdCmp::Le => (false, false),
            ThresholdCmp::Lt => (true, false),
            ThresholdCmp::Gt => (false, true),
            ThresholdCmp::Ge => (true, true),
        }
    }
}

/// A subset of a dataset's rows: a packed row bitset + per-class counts.
///
/// A `Subset` does not borrow the [`Dataset`]; callers pass the dataset to
/// operations that need values, labels, or class masks. All subsets flowing
/// through one prover run refer to the same dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subset {
    /// Row bitset, 64 rows per word, canonical (no trailing zero words).
    words: Vec<u64>,
    /// Cached `Σ class_counts` (= total popcount of `words`).
    len: u32,
    class_counts: Vec<u32>,
}

/// Strips trailing zero words so equal sets are structurally equal.
fn trim(words: &mut Vec<u64>) {
    while words.last() == Some(&0) {
        words.pop();
    }
}

/// Per-class counts of a packed row set, by AND-popcount against the
/// dataset's class masks.
fn counts_of_words(ds: &Dataset, words: &[u64]) -> Vec<u32> {
    (0..ds.n_classes())
        .map(|c| {
            ds.class_mask(c as ClassId)
                .iter()
                .zip(words)
                .map(|(&m, &w)| (m & w).count_ones())
                .sum()
        })
        .collect()
}

/// Iterator over the set bits of one word, ascending.
struct WordBits {
    word: u64,
    base: u32,
}

impl Iterator for WordBits {
    type Item = RowId;

    #[inline]
    fn next(&mut self) -> Option<RowId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl Subset {
    /// The subset containing every row of `ds`.
    pub fn full(ds: &Dataset) -> Self {
        let n = ds.len();
        let mut words = vec![!0u64; n / 64];
        if !n.is_multiple_of(64) {
            words.push((1u64 << (n % 64)) - 1);
        }
        Subset {
            words,
            len: n as u32,
            class_counts: ds.class_counts(),
        }
    }

    /// An empty subset shaped for `n_classes` classes.
    pub fn empty(n_classes: usize) -> Self {
        Subset {
            words: Vec::new(),
            len: 0,
            class_counts: vec![0; n_classes],
        }
    }

    /// Builds a subset from arbitrary row ids (duplicates collapse into the
    /// same bit).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `ds`.
    pub fn from_indices(ds: &Dataset, indices: Vec<RowId>) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut class_counts = vec![0u32; ds.n_classes()];
        let mut len = 0u32;
        for &i in &indices {
            assert!((i as usize) < ds.len(), "row id {i} out of bounds");
            let w = i as usize / 64;
            if words.len() <= w {
                words.resize(w + 1, 0);
            }
            let bit = 1u64 << (i % 64);
            if words[w] & bit == 0 {
                words[w] |= bit;
                class_counts[ds.label(i) as usize] += 1;
                len += 1;
            }
        }
        trim(&mut words);
        Subset {
            words,
            len,
            class_counts,
        }
    }

    /// Number of rows in the subset (`|T|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the subset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The row ids in ascending order, materialised. The packed backend no
    /// longer stores an index vector; callers that only need to walk the
    /// rows should prefer [`Subset::iter`].
    pub fn indices(&self) -> Vec<RowId> {
        self.iter().collect()
    }

    /// The packed word representation (64 rows per word, no trailing zero
    /// words). Cheap identity key for deduplication and differential tests.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Per-class row counts (`cᵢ` in the paper's `cprob#`).
    #[inline]
    pub fn class_counts(&self) -> &[u32] {
        &self.class_counts
    }

    /// Count of rows labelled `class`.
    #[inline]
    pub fn count_of(&self, class: ClassId) -> u32 {
        self.class_counts[class as usize]
    }

    /// Number of classes this subset is shaped for.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.class_counts.len()
    }

    /// Whether every row in the subset has the same label (vacuously true
    /// when empty). This is the concrete `ent(T) = 0` test.
    pub fn is_pure(&self) -> bool {
        self.class_counts.iter().filter(|&&c| c > 0).count() <= 1
    }

    /// Iterator over the row ids, in strictly increasing order.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| WordBits {
            word: w,
            base: (wi * 64) as u32,
        })
    }

    /// Whether `row` is in the subset.
    #[inline]
    pub fn contains(&self, row: RowId) -> bool {
        self.words
            .get(row as usize / 64)
            .is_some_and(|w| w >> (row % 64) & 1 == 1)
    }

    /// Splits the subset by a row predicate: rows satisfying `keep` go left,
    /// the rest go right. This is the concrete `T↓φ / T↓¬φ` split. `keep` is
    /// invoked once per member row, in ascending row order.
    pub fn partition<F: FnMut(RowId) -> bool>(
        &self,
        ds: &Dataset,
        mut keep: F,
    ) -> (Subset, Subset) {
        let k = self.n_classes();
        let mut yes = Subset {
            words: vec![0; self.words.len()],
            len: 0,
            class_counts: vec![0; k],
        };
        let mut no = yes.clone();
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let tz = w.trailing_zeros();
                w &= w - 1;
                let row = (wi * 64) as u32 + tz;
                let target = if keep(row) { &mut yes } else { &mut no };
                target.words[wi] |= 1u64 << tz;
                target.class_counts[ds.label(row) as usize] += 1;
                target.len += 1;
            }
        }
        trim(&mut yes.words);
        trim(&mut no.words);
        (yes, no)
    }

    /// Keeps only rows satisfying `keep` (the `T↓φ` half of
    /// [`Subset::partition`]).
    pub fn filter<F: FnMut(RowId) -> bool>(&self, ds: &Dataset, mut keep: F) -> Subset {
        let k = self.n_classes();
        let mut out = Subset {
            words: vec![0; self.words.len()],
            len: 0,
            class_counts: vec![0; k],
        };
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let tz = w.trailing_zeros();
                w &= w - 1;
                let row = (wi * 64) as u32 + tz;
                if keep(row) {
                    out.words[wi] |= 1u64 << tz;
                    out.class_counts[ds.label(row) as usize] += 1;
                    out.len += 1;
                }
            }
        }
        trim(&mut out.words);
        out
    }

    /// Keeps only rows whose `feature` value satisfies `cmp` against
    /// `tau` — the threshold restriction `T↓φ` both learners bottom out
    /// in. Word-parallel when the dataset has a threshold index for the
    /// feature (one binary search + one AND/ANDNOT pass, with counts by
    /// mask popcount); falls back to the row-predicate [`Subset::filter`]
    /// on unindexed high-cardinality columns. Identical results either
    /// way (pinned in `crates/data/tests/subset_equiv.rs`).
    pub fn filter_cmp(&self, ds: &Dataset, feature: usize, tau: f64, cmp: ThresholdCmp) -> Subset {
        let (strict, invert) = cmp.mask_form();
        match ds.le_mask(feature, tau, strict) {
            Some(mask) => {
                let mut words: Vec<u64> = self
                    .words
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| {
                        let m = mask.get(i).copied().unwrap_or(0);
                        w & if invert { !m } else { m }
                    })
                    .collect();
                trim(&mut words);
                let class_counts = counts_of_words(ds, &words);
                let len = class_counts.iter().sum();
                Subset {
                    words,
                    len,
                    class_counts,
                }
            }
            None => self.filter(ds, |r| cmp.eval(ds.value(r, feature), tau)),
        }
    }

    /// Keeps only rows labelled `class` — the set `T'` of the paper's
    /// `pure(⟨T,n⟩, i)` operation (§4.7). Word-parallel: one AND pass
    /// against the dataset's class mask.
    pub fn filter_class(&self, ds: &Dataset, class: ClassId) -> Subset {
        let mask = ds.class_mask(class);
        let mut words: Vec<u64> = self.words.iter().zip(mask).map(|(&w, &m)| w & m).collect();
        trim(&mut words);
        let count: u32 = words.iter().map(|w| w.count_ones()).sum();
        let mut class_counts = vec![0u32; self.n_classes()];
        class_counts[class as usize] = count;
        Subset {
            words,
            len: count,
            class_counts,
        }
    }

    /// Removes the rows of `other` from `self` (set difference), used by the
    /// enumeration baseline to materialise elements of `Δn(T)`.
    pub fn difference(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut words: Vec<u64> = self
            .words
            .iter()
            .enumerate()
            .map(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0))
            .collect();
        trim(&mut words);
        let class_counts = counts_of_words(ds, &words);
        let len = class_counts.iter().sum();
        Subset {
            words,
            len,
            class_counts,
        }
    }

    /// `|self \ other|`, one ANDNOT + popcount pass over the words. This is
    /// the `|T₁ \ T₂|` quantity in the abstract join (Definition 4.1) and
    /// the partial order (footnote 4).
    pub fn difference_len(&self, other: &Subset) -> usize {
        self.words
            .iter()
            .enumerate()
            .map(|(i, &w)| (w & !other.words.get(i).copied().unwrap_or(0)).count_ones() as usize)
            .sum()
    }

    /// Whether `self ⊆ other` — O(words) with early exit.
    pub fn is_subset_of(&self, other: &Subset) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Set union (`T₁ ∪ T₂` in the abstract join): word-parallel OR with
    /// counts recomputed against the dataset's class masks.
    pub fn union(&self, ds: &Dataset, other: &Subset) -> Subset {
        let (long, short) = if self.words.len() >= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        let words: Vec<u64> = long
            .iter()
            .enumerate()
            .map(|(i, &w)| w | short.get(i).copied().unwrap_or(0))
            .collect();
        // OR of two canonical vectors keeps the longer one's top word
        // non-zero, so no trim is needed.
        let class_counts = counts_of_words(ds, &words);
        let len = class_counts.iter().sum();
        Subset {
            words,
            len,
            class_counts,
        }
    }

    /// Set intersection (`T₁ ∩ T₂` in the abstract meet, footnote 4):
    /// word-parallel AND.
    pub fn intersect(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| a & b)
            .collect();
        trim(&mut words);
        let class_counts = counts_of_words(ds, &words);
        let len = class_counts.iter().sum();
        Subset {
            words,
            len,
            class_counts,
        }
    }

    /// Approximate in-memory footprint in bytes (packed words + counts),
    /// used by the harness's memory-proxy accounting (DESIGN.md §4.1).
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
            + self.class_counts.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    /// 6 rows, 1 feature (= row value), labels 0,0,1,1,0,1.
    fn tiny() -> Dataset {
        let rows: Vec<(Vec<f64>, ClassId)> = [0, 0, 1, 1, 0, 1]
            .iter()
            .enumerate()
            .map(|(i, &l)| (vec![i as f64], l as ClassId))
            .collect();
        Dataset::from_rows(Schema::real(1, 2), &rows).unwrap()
    }

    #[test]
    fn full_and_counts() {
        let ds = tiny();
        let s = Subset::full(&ds);
        assert_eq!(s.len(), 6);
        assert_eq!(s.class_counts(), &[3, 3]);
        assert!(!s.is_pure());
        assert!(Subset::empty(2).is_pure());
    }

    #[test]
    fn from_indices_sorts_and_dedups() {
        let ds = tiny();
        let s = Subset::from_indices(&ds, vec![4, 1, 4, 0]);
        assert_eq!(s.indices(), &[0, 1, 4]);
        assert_eq!(s.class_counts(), &[3, 0]);
        assert!(s.is_pure());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_indices_rejects_out_of_bounds() {
        let ds = tiny();
        let _ = Subset::from_indices(&ds, vec![99]);
    }

    #[test]
    fn partition_splits_counts() {
        let ds = tiny();
        let s = Subset::full(&ds);
        let (lo, hi) = s.partition(&ds, |r| ds.value(r, 0) <= 2.0);
        assert_eq!(lo.indices(), &[0, 1, 2]);
        assert_eq!(hi.indices(), &[3, 4, 5]);
        assert_eq!(lo.class_counts(), &[2, 1]);
        assert_eq!(hi.class_counts(), &[1, 2]);
    }

    #[test]
    fn filter_class_is_pure() {
        let ds = tiny();
        let s = Subset::full(&ds);
        let zeros = s.filter_class(&ds, 0);
        assert_eq!(zeros.indices(), &[0, 1, 4]);
        assert!(zeros.is_pure());
        assert_eq!(zeros.count_of(0), 3);
        assert_eq!(zeros.count_of(1), 0);
    }

    #[test]
    fn set_algebra() {
        let ds = tiny();
        let a = Subset::from_indices(&ds, vec![0, 1, 2, 3]);
        let b = Subset::from_indices(&ds, vec![2, 3, 4, 5]);
        assert_eq!(a.difference_len(&b), 2);
        assert_eq!(b.difference_len(&a), 2);
        assert_eq!(a.union(&ds, &b).indices(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersect(&ds, &b).indices(), &[2, 3]);
        assert_eq!(a.difference(&ds, &b).indices(), &[0, 1]);
        assert!(a.intersect(&ds, &b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&Subset::full(&ds)));
        // Counts stay consistent through the algebra.
        assert_eq!(a.union(&ds, &b).class_counts(), &[3, 3]);
        assert_eq!(a.intersect(&ds, &b).class_counts(), &[0, 2]);
    }

    #[test]
    fn contains_and_iter() {
        let ds = tiny();
        let s = Subset::from_indices(&ds, vec![1, 3, 5]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(!s.contains(1000), "out-of-range probes are simply absent");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_edge_cases() {
        let ds = tiny();
        let e = Subset::empty(2);
        let f = Subset::full(&ds);
        assert_eq!(e.difference_len(&f), 0);
        assert_eq!(f.difference_len(&e), 6);
        assert!(e.is_subset_of(&f));
        assert_eq!(e.union(&ds, &f), f);
        assert_eq!(e.intersect(&ds, &f), e);
    }

    #[test]
    fn representation_is_canonical() {
        // However a set becomes empty (or loses its top rows), its word
        // vector is trimmed, so structural equality is set equality.
        let ds = tiny();
        let f = Subset::full(&ds);
        let emptied = f.filter(&ds, |_| false);
        assert_eq!(emptied, Subset::empty(2));
        assert!(emptied.words().is_empty());
        let low = f.filter(&ds, |r| r < 2);
        assert_eq!(low, Subset::from_indices(&ds, vec![0, 1]));
        assert_eq!(low.words().len(), 1);
        let (yes, no) = f.partition(&ds, |_| true);
        assert_eq!(yes, f);
        assert_eq!(no, Subset::empty(2));
        // Differences and intersections trim too.
        assert_eq!(f.difference(&ds, &f), Subset::empty(2));
        assert_eq!(f.intersect(&ds, &Subset::empty(2)), Subset::empty(2));
        assert_eq!(
            f.filter_class(&ds, 0).filter_class(&ds, 1),
            Subset::empty(2)
        );
    }

    #[test]
    fn multi_word_sets() {
        // 130 rows span three words; exercise the word boundaries.
        let rows: Vec<(Vec<f64>, ClassId)> = (0..130)
            .map(|i| (vec![i as f64], (i % 2) as ClassId))
            .collect();
        let ds = Dataset::from_rows(Schema::real(1, 2), &rows).unwrap();
        let f = Subset::full(&ds);
        assert_eq!(f.words().len(), 3);
        assert_eq!(f.len(), 130);
        assert_eq!(f.class_counts(), &[65, 65]);
        let edges = Subset::from_indices(&ds, vec![0, 63, 64, 127, 128, 129]);
        assert_eq!(edges.indices(), &[0, 63, 64, 127, 128, 129]);
        assert_eq!(edges.len(), 6);
        assert!(edges.is_subset_of(&f));
        assert_eq!(f.difference_len(&edges), 124);
        let evens = f.filter(&ds, |r| r % 2 == 0);
        assert_eq!(evens.len(), 65);
        assert!(evens.is_pure());
        assert_eq!(evens, f.filter_class(&ds, 0));
        assert_eq!(evens.union(&ds, &f.filter_class(&ds, 1)), f);
    }
}
