//! Sorted-index views into a [`Dataset`].
//!
//! Every training-set fragment in the pipeline — the shrinking set held by
//! the concrete learner `DTrace`, the base set `T` of an abstract element
//! `⟨T,n⟩`, each disjunct of the disjunctive domain — is a [`Subset`]: a
//! strictly increasing vector of row ids plus cached per-class counts.
//!
//! Keeping indices sorted makes the set algebra the abstract domain needs
//! (`|T₁ \ T₂|` for joins, `∩` for meets, `∪` for joins) a linear merge, and
//! caching class counts makes `cprob`/`ent` (and their abstract versions)
//! O(k) instead of O(|T|).

use crate::{ClassId, Dataset, RowId};

/// A subset of a dataset's rows: sorted unique row ids + per-class counts.
///
/// A `Subset` does not borrow the [`Dataset`]; callers pass the dataset to
/// operations that need values or labels. All subsets flowing through one
/// prover run refer to the same dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subset {
    indices: Vec<RowId>,
    class_counts: Vec<u32>,
}

impl Subset {
    /// The subset containing every row of `ds`.
    pub fn full(ds: &Dataset) -> Self {
        Subset {
            indices: (0..ds.len() as RowId).collect(),
            class_counts: ds.class_counts(),
        }
    }

    /// An empty subset shaped for `n_classes` classes.
    pub fn empty(n_classes: usize) -> Self {
        Subset {
            indices: Vec::new(),
            class_counts: vec![0; n_classes],
        }
    }

    /// Builds a subset from arbitrary row ids (sorted and deduplicated here).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `ds`.
    pub fn from_indices(ds: &Dataset, mut indices: Vec<RowId>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        if let Some(&last) = indices.last() {
            assert!((last as usize) < ds.len(), "row id {last} out of bounds");
        }
        let mut class_counts = vec![0u32; ds.n_classes()];
        for &i in &indices {
            class_counts[ds.label(i) as usize] += 1;
        }
        Subset {
            indices,
            class_counts,
        }
    }

    /// Number of rows in the subset (`|T|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the subset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted row ids.
    #[inline]
    pub fn indices(&self) -> &[RowId] {
        &self.indices
    }

    /// Per-class row counts (`cᵢ` in the paper's `cprob#`).
    #[inline]
    pub fn class_counts(&self) -> &[u32] {
        &self.class_counts
    }

    /// Count of rows labelled `class`.
    #[inline]
    pub fn count_of(&self, class: ClassId) -> u32 {
        self.class_counts[class as usize]
    }

    /// Number of classes this subset is shaped for.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.class_counts.len()
    }

    /// Whether every row in the subset has the same label (vacuously true
    /// when empty). This is the concrete `ent(T) = 0` test.
    pub fn is_pure(&self) -> bool {
        self.class_counts.iter().filter(|&&c| c > 0).count() <= 1
    }

    /// Iterator over the row ids.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.indices.iter().copied()
    }

    /// Whether `row` is in the subset.
    pub fn contains(&self, row: RowId) -> bool {
        self.indices.binary_search(&row).is_ok()
    }

    /// Splits the subset by a row predicate: rows satisfying `keep` go left,
    /// the rest go right. This is the concrete `T↓φ / T↓¬φ` split.
    pub fn partition<F: FnMut(RowId) -> bool>(
        &self,
        ds: &Dataset,
        mut keep: F,
    ) -> (Subset, Subset) {
        let k = self.n_classes();
        let mut yes = Subset::empty(k);
        let mut no = Subset::empty(k);
        for &i in &self.indices {
            let target = if keep(i) { &mut yes } else { &mut no };
            target.indices.push(i);
            target.class_counts[ds.label(i) as usize] += 1;
        }
        (yes, no)
    }

    /// Keeps only rows satisfying `keep` (the `T↓φ` half of
    /// [`Subset::partition`]).
    pub fn filter<F: FnMut(RowId) -> bool>(&self, ds: &Dataset, keep: F) -> Subset {
        self.partition(ds, keep).0
    }

    /// Keeps only rows labelled `class` — the set `T'` of the paper's
    /// `pure(⟨T,n⟩, i)` operation (§4.7).
    pub fn filter_class(&self, ds: &Dataset, class: ClassId) -> Subset {
        let mut out = Subset::empty(self.n_classes());
        for &i in &self.indices {
            if ds.label(i) == class {
                out.indices.push(i);
            }
        }
        out.class_counts[class as usize] = out.indices.len() as u32;
        out
    }

    /// Removes the rows of `other` from `self` (set difference), used by the
    /// enumeration baseline to materialise elements of `Δn(T)`.
    pub fn difference(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut out = Subset::empty(self.n_classes());
        for &i in &self.indices {
            if !other.contains(i) {
                out.indices.push(i);
                out.class_counts[ds.label(i) as usize] += 1;
            }
        }
        out
    }

    /// `|self \ other|`, computed by a linear merge without allocation. This
    /// is the `|T₁ \ T₂|` quantity in the abstract join (Definition 4.1) and
    /// the partial order (footnote 4).
    pub fn difference_len(&self, other: &Subset) -> usize {
        let (a, b) = (&self.indices, &other.indices);
        let (mut i, mut j, mut only_a) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    only_a += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        only_a + (a.len() - i)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Subset) -> bool {
        self.difference_len(other) == 0
    }

    /// Set union (`T₁ ∪ T₂` in the abstract join), recomputing counts for
    /// merged elements via the dataset's labels.
    pub fn union(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut out = Subset::empty(self.n_classes());
        let (a, b) = (&self.indices, &other.indices);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) => {
                    if x == y {
                        i += 1;
                        j += 1;
                        x
                    } else if x < y {
                        i += 1;
                        x
                    } else {
                        j += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            out.indices.push(next);
            out.class_counts[ds.label(next) as usize] += 1;
        }
        out
    }

    /// Set intersection (`T₁ ∩ T₂` in the abstract meet, footnote 4).
    pub fn intersect(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut out = Subset::empty(self.n_classes());
        let (a, b) = (&self.indices, &other.indices);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.indices.push(a[i]);
                    out.class_counts[ds.label(a[i]) as usize] += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Approximate in-memory footprint in bytes (index vector + counts),
    /// used by the harness's memory-proxy accounting.
    pub fn approx_bytes(&self) -> usize {
        self.indices.len() * std::mem::size_of::<RowId>()
            + self.class_counts.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    /// 6 rows, 1 feature (= row value), labels 0,0,1,1,0,1.
    fn tiny() -> Dataset {
        let rows: Vec<(Vec<f64>, ClassId)> = [0, 0, 1, 1, 0, 1]
            .iter()
            .enumerate()
            .map(|(i, &l)| (vec![i as f64], l as ClassId))
            .collect();
        Dataset::from_rows(Schema::real(1, 2), &rows).unwrap()
    }

    #[test]
    fn full_and_counts() {
        let ds = tiny();
        let s = Subset::full(&ds);
        assert_eq!(s.len(), 6);
        assert_eq!(s.class_counts(), &[3, 3]);
        assert!(!s.is_pure());
        assert!(Subset::empty(2).is_pure());
    }

    #[test]
    fn from_indices_sorts_and_dedups() {
        let ds = tiny();
        let s = Subset::from_indices(&ds, vec![4, 1, 4, 0]);
        assert_eq!(s.indices(), &[0, 1, 4]);
        assert_eq!(s.class_counts(), &[3, 0]);
        assert!(s.is_pure());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_indices_rejects_out_of_bounds() {
        let ds = tiny();
        let _ = Subset::from_indices(&ds, vec![99]);
    }

    #[test]
    fn partition_splits_counts() {
        let ds = tiny();
        let s = Subset::full(&ds);
        let (lo, hi) = s.partition(&ds, |r| ds.value(r, 0) <= 2.0);
        assert_eq!(lo.indices(), &[0, 1, 2]);
        assert_eq!(hi.indices(), &[3, 4, 5]);
        assert_eq!(lo.class_counts(), &[2, 1]);
        assert_eq!(hi.class_counts(), &[1, 2]);
    }

    #[test]
    fn filter_class_is_pure() {
        let ds = tiny();
        let s = Subset::full(&ds);
        let zeros = s.filter_class(&ds, 0);
        assert_eq!(zeros.indices(), &[0, 1, 4]);
        assert!(zeros.is_pure());
        assert_eq!(zeros.count_of(0), 3);
        assert_eq!(zeros.count_of(1), 0);
    }

    #[test]
    fn set_algebra() {
        let ds = tiny();
        let a = Subset::from_indices(&ds, vec![0, 1, 2, 3]);
        let b = Subset::from_indices(&ds, vec![2, 3, 4, 5]);
        assert_eq!(a.difference_len(&b), 2);
        assert_eq!(b.difference_len(&a), 2);
        assert_eq!(a.union(&ds, &b).indices(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersect(&ds, &b).indices(), &[2, 3]);
        assert_eq!(a.difference(&ds, &b).indices(), &[0, 1]);
        assert!(a.intersect(&ds, &b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&Subset::full(&ds)));
        // Counts stay consistent through the algebra.
        assert_eq!(a.union(&ds, &b).class_counts(), &[3, 3]);
        assert_eq!(a.intersect(&ds, &b).class_counts(), &[0, 2]);
    }

    #[test]
    fn contains_and_iter() {
        let ds = tiny();
        let s = Subset::from_indices(&ds, vec![1, 3, 5]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_edge_cases() {
        let ds = tiny();
        let e = Subset::empty(2);
        let f = Subset::full(&ds);
        assert_eq!(e.difference_len(&f), 0);
        assert_eq!(f.difference_len(&e), 6);
        assert!(e.is_subset_of(&f));
        assert_eq!(e.union(&ds, &f), f);
        assert_eq!(e.intersect(&ds, &f), e);
    }
}
