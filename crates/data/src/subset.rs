//! Word-packed, hash-consed row-set views into a [`Dataset`].
//!
//! Every training-set fragment in the pipeline — the shrinking set held by
//! the concrete learner `DTrace`, the base set `T` of an abstract element
//! `⟨T,n⟩`, each disjunct of the disjunctive domain — is a [`Subset`]: a
//! bitset over row ids packed into `u64` words, plus cached per-class
//! counts.
//!
//! The packed representation makes the set algebra the abstract domain
//! needs word-parallel: `|T₁ \ T₂|` (joins and the partial order), `∩`
//! (meets), `∪` (joins), and `⊆` are a handful of AND/OR/ANDNOT + popcount
//! passes over `ceil(|dataset| / 64)` words instead of linear merges over
//! index vectors. Per-class counts are recomputed by AND-popcount against
//! the dataset's per-class row bitmasks ([`Dataset::class_mask`]), keeping
//! `cprob`/`ent` (and their abstract versions) O(k). Every such pass
//! dispatches through the chunked vector kernels of [`crate::simd`]
//! (4×`u64` lanes under the default `simd` feature, with a bit-identical
//! scalar fallback behind the `--no-simd` escape hatch).
//!
//! # Hash-consing
//!
//! The payload (words + counts) lives behind an `Arc<SubsetRepr>` carrying
//! a **precomputed 64-bit content hash**, so:
//!
//! * `clone` is a reference-count bump — the disjunct frontier, the sweep
//!   cache's budget-widened re-seeds, and the `bestSplit#` memo keys all
//!   share one allocation per distinct row set;
//! * `Hash` writes the precomputed hash (O(1));
//! * `Eq` short-circuits on pointer identity, then on hash inequality,
//!   and only falls back to a word compare on a (conjectural) collision —
//!   frontier deduplication and subsumption pruning stop re-walking and
//!   re-copying word vectors.
//!
//! A [`SubsetInterner`] canonicalises payloads within one certification
//! run: re-encountered row sets are rewired to the first allocation, which
//! turns the `Eq` pointer fast path into the common case and lets callers
//! count structure sharing (`interner_hits` in the engine metrics).
//!
//! Iteration order is unchanged from the historical sorted-`Vec`
//! representation: [`Subset::iter`] yields row ids in strictly increasing
//! order, so trace recording, counterexample minimality, and every
//! deterministic fold downstream are bit-identical to the old backend
//! (pinned by `crates/data/tests/subset_equiv.rs`).
//!
//! The word vector is kept *canonical* — no trailing zero words — so
//! structural equality (`PartialEq`) coincides with set equality no matter
//! which operations produced the two sides.

use crate::{simd, ClassId, Dataset, RowId};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A threshold comparison against one feature, for
/// [`Subset::filter_cmp`]'s word-parallel restriction fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdCmp {
    /// `value ≤ τ`.
    Le,
    /// `value < τ`.
    Lt,
    /// `value > τ` (complement of [`ThresholdCmp::Le`]).
    Gt,
    /// `value ≥ τ` (complement of [`ThresholdCmp::Lt`]).
    Ge,
}

impl ThresholdCmp {
    /// Whether `v` satisfies the comparison against `tau`.
    #[inline]
    fn eval(self, v: f64, tau: f64) -> bool {
        match self {
            ThresholdCmp::Le => v <= tau,
            ThresholdCmp::Lt => v < tau,
            ThresholdCmp::Gt => v > tau,
            ThresholdCmp::Ge => v >= tau,
        }
    }

    /// `(strict, invert)` decomposition against the dataset's prefix
    /// masks: `Lt`/`Ge` query the strict (`<`) mask, and the two upper
    /// comparisons (`Gt`/`Ge`) take the complement of their lower dual.
    #[inline]
    fn mask_form(self) -> (bool, bool) {
        match self {
            ThresholdCmp::Le => (false, false),
            ThresholdCmp::Lt => (true, false),
            ThresholdCmp::Gt => (false, true),
            ThresholdCmp::Ge => (true, true),
        }
    }
}

/// The shared, immutable payload of a [`Subset`]: canonical words, cached
/// counts, and the precomputed content hash.
#[derive(Debug)]
struct SubsetRepr {
    /// Row bitset, 64 rows per word, canonical (no trailing zero words).
    words: Vec<u64>,
    /// Precomputed content hash over `words` and `class_counts`.
    hash: u64,
    /// Cached `Σ class_counts` (= total popcount of `words`).
    len: u32,
    class_counts: Vec<u32>,
}

/// FNV-1a over the words and class counts, with an extra avalanche mix so
/// single-bit set differences spread across the whole hash.
fn content_hash(words: &[u64], class_counts: &[u32]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (words.len() as u64).wrapping_mul(PRIME);
    for &w in words {
        h = (h ^ w).wrapping_mul(PRIME);
        h ^= h >> 29;
    }
    for &c in class_counts {
        h = (h ^ u64::from(c)).wrapping_mul(PRIME);
    }
    h ^ (h >> 32)
}

/// A subset of a dataset's rows: a packed row bitset + per-class counts,
/// hash-consed behind an [`Arc`] (clone is a refcount bump; see the module
/// docs for the equality/hash fast paths).
///
/// A `Subset` does not borrow the [`Dataset`]; callers pass the dataset to
/// operations that need values, labels, or class masks. All subsets flowing
/// through one prover run refer to the same dataset.
#[derive(Debug, Clone)]
pub struct Subset {
    repr: Arc<SubsetRepr>,
}

impl PartialEq for Subset {
    fn eq(&self, other: &Self) -> bool {
        // Pointer identity (interned payloads), then the precomputed hash
        // as a cheap reject; the word compare only runs on a collision or
        // a true match between distinct allocations.
        Arc::ptr_eq(&self.repr, &other.repr)
            || (self.repr.hash == other.repr.hash
                && self.repr.len == other.repr.len
                && self.repr.words == other.repr.words
                && self.repr.class_counts == other.repr.class_counts)
    }
}

impl Eq for Subset {}

impl Hash for Subset {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.repr.hash);
    }
}

/// Strips trailing zero words so equal sets are structurally equal.
fn trim(words: &mut Vec<u64>) {
    while words.last() == Some(&0) {
        words.pop();
    }
}

/// Per-class counts of a packed row set, by fused AND-popcount against
/// the dataset's class masks (`simd::and_popcount`).
fn counts_of_words(ds: &Dataset, words: &[u64]) -> Vec<u32> {
    (0..ds.n_classes())
        .map(|c| simd::and_popcount(&ds.class_mask(c as ClassId)[..words.len()], words))
        .collect()
}

/// Counted-ones cursor over a subset's rows, strictly ascending.
///
/// The cursor knows the subset's cardinality up front (it is an
/// [`ExactSizeIterator`], so gathers preallocate exactly), stops the
/// instant the last set bit has been yielded, and skips runs of dead
/// (all-zero) words through the chunked first-set kernel instead of
/// testing them one by one — sparse subsets iterate in time proportional
/// to their population, not their span.
#[derive(Debug, Clone)]
pub struct SubsetIter<'a> {
    words: &'a [u64],
    wi: usize,
    current: u64,
    remaining: u32,
}

impl Iterator for SubsetIter<'_> {
    type Item = RowId;

    #[inline]
    fn next(&mut self) -> Option<RowId> {
        if self.remaining == 0 {
            return None;
        }
        if self.current == 0 {
            let wi = simd::first_nonzero_word(self.words, self.wi + 1)
                .expect("remaining > 0 implies a later non-zero word");
            self.wi = wi;
            self.current = self.words[wi];
        }
        let tz = self.current.trailing_zeros();
        self.current &= self.current - 1;
        self.remaining -= 1;
        Some((self.wi as u32) * 64 + tz)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for SubsetIter<'_> {}

impl Subset {
    /// Seals a payload: trims to canonical form, computes the content
    /// hash, and wraps the parts in a fresh shared allocation. Every
    /// constructor and set operation bottoms out here.
    fn seal(mut words: Vec<u64>, len: u32, class_counts: Vec<u32>) -> Self {
        trim(&mut words);
        let hash = content_hash(&words, &class_counts);
        Subset {
            repr: Arc::new(SubsetRepr {
                words,
                hash,
                len,
                class_counts,
            }),
        }
    }

    /// The subset containing every **live** row of `ds` (a copy of the
    /// dataset's live-slot mask — on post-removal epochs the row ids are
    /// not dense, but the subset algebra never assumes they are).
    pub fn full(ds: &Dataset) -> Self {
        let words = ds.live_words().to_vec();
        Subset::seal(words, ds.len() as u32, ds.class_counts())
    }

    /// An empty subset shaped for `n_classes` classes.
    pub fn empty(n_classes: usize) -> Self {
        Subset::seal(Vec::new(), 0, vec![0; n_classes])
    }

    /// Builds a subset from arbitrary row ids (duplicates collapse into the
    /// same bit).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `ds` or names a dead slot.
    pub fn from_indices(ds: &Dataset, indices: Vec<RowId>) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut class_counts = vec![0u32; ds.n_classes()];
        let mut len = 0u32;
        for &i in &indices {
            assert!(ds.is_live(i), "row id {i} out of bounds or not live");
            let w = i as usize / 64;
            if words.len() <= w {
                words.resize(w + 1, 0);
            }
            let bit = 1u64 << (i % 64);
            if words[w] & bit == 0 {
                words[w] |= bit;
                class_counts[ds.label(i) as usize] += 1;
                len += 1;
            }
        }
        Subset::seal(words, len, class_counts)
    }

    /// Number of rows in the subset (`|T|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.repr.len as usize
    }

    /// Whether the subset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.repr.len == 0
    }

    /// The row ids in ascending order, materialised. The packed backend no
    /// longer stores an index vector; callers that only need to walk the
    /// rows should prefer [`Subset::iter`].
    pub fn indices(&self) -> Vec<RowId> {
        self.iter().collect()
    }

    /// The packed word representation (64 rows per word, no trailing zero
    /// words). Cheap identity key for deduplication and differential tests.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.repr.words
    }

    /// The precomputed 64-bit content hash (over words and class counts).
    /// Equal sets always report equal hashes; the converse holds modulo
    /// 64-bit collisions, which `Eq` resolves by word compare.
    #[inline]
    pub fn content_hash(&self) -> u64 {
        self.repr.hash
    }

    /// Whether `self` and `other` share one hash-consed payload
    /// allocation (the post-interning fast path; implies equality).
    #[inline]
    pub fn shares_repr(&self, other: &Subset) -> bool {
        Arc::ptr_eq(&self.repr, &other.repr)
    }

    /// Per-class row counts (`cᵢ` in the paper's `cprob#`).
    #[inline]
    pub fn class_counts(&self) -> &[u32] {
        &self.repr.class_counts
    }

    /// Count of rows labelled `class`.
    #[inline]
    pub fn count_of(&self, class: ClassId) -> u32 {
        self.repr.class_counts[class as usize]
    }

    /// Number of classes this subset is shaped for.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.repr.class_counts.len()
    }

    /// Whether every row in the subset has the same label (vacuously true
    /// when empty). This is the concrete `ent(T) = 0` test.
    pub fn is_pure(&self) -> bool {
        self.repr.class_counts.iter().filter(|&&c| c > 0).count() <= 1
    }

    /// Iterator over the row ids, in strictly increasing order — a
    /// counted-ones cursor ([`SubsetIter`]) that yields exactly
    /// [`len`](Subset::len) rows and skips dead words.
    pub fn iter(&self) -> SubsetIter<'_> {
        SubsetIter {
            words: &self.repr.words,
            wi: 0,
            current: self.repr.words.first().copied().unwrap_or(0),
            remaining: self.repr.len,
        }
    }

    /// Whether `row` is in the subset.
    #[inline]
    pub fn contains(&self, row: RowId) -> bool {
        self.repr
            .words
            .get(row as usize / 64)
            .is_some_and(|w| w >> (row % 64) & 1 == 1)
    }

    /// Splits the subset by a row predicate: rows satisfying `keep` go left,
    /// the rest go right. This is the concrete `T↓φ / T↓¬φ` split. `keep` is
    /// invoked once per member row, in ascending row order.
    pub fn partition<F: FnMut(RowId) -> bool>(
        &self,
        ds: &Dataset,
        mut keep: F,
    ) -> (Subset, Subset) {
        let k = self.n_classes();
        let words = &self.repr.words;
        let mut yes = (vec![0u64; words.len()], 0u32, vec![0u32; k]);
        let mut no = yes.clone();
        for (wi, &word) in words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let tz = w.trailing_zeros();
                w &= w - 1;
                let row = (wi * 64) as u32 + tz;
                let target = if keep(row) { &mut yes } else { &mut no };
                target.0[wi] |= 1u64 << tz;
                target.2[ds.label(row) as usize] += 1;
                target.1 += 1;
            }
        }
        (
            Subset::seal(yes.0, yes.1, yes.2),
            Subset::seal(no.0, no.1, no.2),
        )
    }

    /// Keeps only rows satisfying `keep` (the `T↓φ` half of
    /// [`Subset::partition`]).
    pub fn filter<F: FnMut(RowId) -> bool>(&self, ds: &Dataset, mut keep: F) -> Subset {
        let src = &self.repr.words;
        let mut words = vec![0u64; src.len()];
        let mut len = 0u32;
        let mut class_counts = vec![0u32; self.n_classes()];
        for (wi, &word) in src.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let tz = w.trailing_zeros();
                w &= w - 1;
                let row = (wi * 64) as u32 + tz;
                if keep(row) {
                    words[wi] |= 1u64 << tz;
                    class_counts[ds.label(row) as usize] += 1;
                    len += 1;
                }
            }
        }
        Subset::seal(words, len, class_counts)
    }

    /// Keeps only rows whose `feature` value satisfies `cmp` against
    /// `tau` — the threshold restriction `T↓φ` both learners bottom out
    /// in. Word-parallel when the dataset has a threshold index for the
    /// feature (one binary search + one AND/ANDNOT pass, with counts by
    /// mask popcount); falls back to the row-predicate [`Subset::filter`]
    /// on unindexed high-cardinality columns. Identical results either
    /// way (pinned in `crates/data/tests/subset_equiv.rs`).
    pub fn filter_cmp(&self, ds: &Dataset, feature: usize, tau: f64, cmp: ThresholdCmp) -> Subset {
        let (strict, invert) = cmp.mask_form();
        match ds.le_mask(feature, tau, strict) {
            Some(mask) => {
                let mut words = Vec::new();
                simd::masked_and(&self.repr.words, mask, invert, &mut words);
                let class_counts = counts_of_words(ds, &words);
                let len = class_counts.iter().sum();
                Subset::seal(words, len, class_counts)
            }
            None => self.filter(ds, |r| cmp.eval(ds.value(r, feature), tau)),
        }
    }

    /// Keeps only rows labelled `class` — the set `T'` of the paper's
    /// `pure(⟨T,n⟩, i)` operation (§4.7). Word-parallel: one AND pass
    /// against the dataset's class mask.
    pub fn filter_class(&self, ds: &Dataset, class: ClassId) -> Subset {
        let mut words = Vec::new();
        simd::and_words(&self.repr.words, ds.class_mask(class), &mut words);
        let count = simd::popcount(&words);
        let mut class_counts = vec![0u32; self.n_classes()];
        class_counts[class as usize] = count;
        Subset::seal(words, count, class_counts)
    }

    /// Removes the rows of `other` from `self` (set difference), used by the
    /// enumeration baseline to materialise elements of `Δn(T)`.
    pub fn difference(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut words = Vec::new();
        simd::andnot_words(&self.repr.words, &other.repr.words, &mut words);
        let class_counts = counts_of_words(ds, &words);
        let len = class_counts.iter().sum();
        Subset::seal(words, len, class_counts)
    }

    /// `|self \ other|`, one ANDNOT + popcount pass over the words. This is
    /// the `|T₁ \ T₂|` quantity in the abstract join (Definition 4.1) and
    /// the partial order (footnote 4).
    pub fn difference_len(&self, other: &Subset) -> usize {
        if self.shares_repr(other) {
            return 0;
        }
        simd::andnot_popcount(&self.repr.words, &other.repr.words) as usize
    }

    /// Whether `self ⊆ other` — O(words) with early exit (O(1) when the
    /// two sides share an interned payload).
    pub fn is_subset_of(&self, other: &Subset) -> bool {
        self.shares_repr(other) || simd::is_subset(&self.repr.words, &other.repr.words)
    }

    /// Set union (`T₁ ∪ T₂` in the abstract join): word-parallel OR with
    /// counts recomputed against the dataset's class masks.
    pub fn union(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut words = Vec::new();
        // OR of two canonical vectors keeps the longer one's top word
        // non-zero, so the seal's trim is a no-op here.
        simd::or_words(&self.repr.words, &other.repr.words, &mut words);
        let class_counts = counts_of_words(ds, &words);
        let len = class_counts.iter().sum();
        Subset::seal(words, len, class_counts)
    }

    /// Set intersection (`T₁ ∩ T₂` in the abstract meet, footnote 4):
    /// word-parallel AND.
    pub fn intersect(&self, ds: &Dataset, other: &Subset) -> Subset {
        let mut words = Vec::new();
        simd::and_words(&self.repr.words, &other.repr.words, &mut words);
        let class_counts = counts_of_words(ds, &words);
        let len = class_counts.iter().sum();
        Subset::seal(words, len, class_counts)
    }

    /// Approximate in-memory footprint in bytes (packed words + counts),
    /// used by the harness's memory-proxy accounting (DESIGN.md §4.1).
    /// Reported per view — interned views sharing one payload each report
    /// the full payload size, keeping the proxy identical to the
    /// pre-hash-consing accounting.
    pub fn approx_bytes(&self) -> usize {
        self.repr.words.len() * std::mem::size_of::<u64>()
            + self.repr.class_counts.len() * std::mem::size_of::<u32>()
    }
}

/// Hash-conses subset payloads within one certification run.
///
/// `intern` maps any [`Subset`] to a *canonical* view of the same row
/// set: the first view presented for each distinct payload. Later views
/// are rewired to the canonical allocation (a refcount bump), so
/// equality checks between interned subsets take the pointer fast path
/// and duplicated payloads are dropped as soon as their last transient
/// view goes away.
///
/// The table holds one canonical `Subset` per distinct payload and is
/// scoped to a single certification run (the learner builds one per
/// `run_abstract` / `run_flip` call), so its footprint is bounded by the
/// number of distinct frontier states the run visits.
///
/// ```
/// use antidote_data::{synth, Subset, SubsetInterner};
///
/// let ds = synth::figure2();
/// let a = Subset::from_indices(&ds, vec![0, 1, 2]);
/// let b = Subset::from_indices(&ds, vec![2, 1, 0]); // equal, distinct alloc
/// let mut interner = SubsetInterner::new();
/// let (ca, hit_a) = interner.intern(&a);
/// let (cb, hit_b) = interner.intern(&b);
/// assert!(!hit_a && hit_b, "first view misses, the re-encounter hits");
/// assert!(ca.shares_repr(&cb), "both views share one payload");
/// assert_eq!(cb, b);
/// ```
#[derive(Debug, Default)]
pub struct SubsetInterner {
    table: HashSet<Subset>,
}

impl SubsetInterner {
    /// An empty interner.
    pub fn new() -> Self {
        SubsetInterner::default()
    }

    /// Number of distinct payloads interned so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Returns the canonical view of `s`'s payload and whether the
    /// payload had been interned before (`true` = hit). On a miss, `s`
    /// itself becomes the canonical view.
    pub fn intern(&mut self, s: &Subset) -> (Subset, bool) {
        match self.table.get(s) {
            Some(canonical) => (canonical.clone(), true),
            None => {
                self.table.insert(s.clone());
                (s.clone(), false)
            }
        }
    }

    /// Interns the subset of every element of `items` (projected by
    /// `get`), rewiring elements whose payload was seen before onto the
    /// canonical allocation via `rebuild`. Returns the number of hits
    /// (re-encountered payloads). Rewiring is value-preserving —
    /// `rebuild` receives a subset equal to the one `get` returned — so
    /// the pass is observationally invisible; both abstract learners
    /// share it for their frontier hygiene.
    pub fn intern_all<D>(
        &mut self,
        items: &mut [D],
        get: impl Fn(&D) -> &Subset,
        rebuild: impl Fn(&D, Subset) -> D,
    ) -> u64 {
        let mut hits = 0u64;
        for item in items.iter_mut() {
            let (canonical, hit) = self.intern(get(item));
            if hit {
                hits += 1;
                if !canonical.shares_repr(get(item)) {
                    *item = rebuild(item, canonical);
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    /// 6 rows, 1 feature (= row value), labels 0,0,1,1,0,1.
    fn tiny() -> Dataset {
        let rows: Vec<(Vec<f64>, ClassId)> = [0, 0, 1, 1, 0, 1]
            .iter()
            .enumerate()
            .map(|(i, &l)| (vec![i as f64], l as ClassId))
            .collect();
        Dataset::from_rows(Schema::real(1, 2), &rows).unwrap()
    }

    #[test]
    fn full_and_counts() {
        let ds = tiny();
        let s = Subset::full(&ds);
        assert_eq!(s.len(), 6);
        assert_eq!(s.class_counts(), &[3, 3]);
        assert!(!s.is_pure());
        assert!(Subset::empty(2).is_pure());
    }

    #[test]
    fn from_indices_sorts_and_dedups() {
        let ds = tiny();
        let s = Subset::from_indices(&ds, vec![4, 1, 4, 0]);
        assert_eq!(s.indices(), &[0, 1, 4]);
        assert_eq!(s.class_counts(), &[3, 0]);
        assert!(s.is_pure());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_indices_rejects_out_of_bounds() {
        let ds = tiny();
        let _ = Subset::from_indices(&ds, vec![99]);
    }

    #[test]
    fn partition_splits_counts() {
        let ds = tiny();
        let s = Subset::full(&ds);
        let (lo, hi) = s.partition(&ds, |r| ds.value(r, 0) <= 2.0);
        assert_eq!(lo.indices(), &[0, 1, 2]);
        assert_eq!(hi.indices(), &[3, 4, 5]);
        assert_eq!(lo.class_counts(), &[2, 1]);
        assert_eq!(hi.class_counts(), &[1, 2]);
    }

    #[test]
    fn filter_class_is_pure() {
        let ds = tiny();
        let s = Subset::full(&ds);
        let zeros = s.filter_class(&ds, 0);
        assert_eq!(zeros.indices(), &[0, 1, 4]);
        assert!(zeros.is_pure());
        assert_eq!(zeros.count_of(0), 3);
        assert_eq!(zeros.count_of(1), 0);
    }

    #[test]
    fn set_algebra() {
        let ds = tiny();
        let a = Subset::from_indices(&ds, vec![0, 1, 2, 3]);
        let b = Subset::from_indices(&ds, vec![2, 3, 4, 5]);
        assert_eq!(a.difference_len(&b), 2);
        assert_eq!(b.difference_len(&a), 2);
        assert_eq!(a.union(&ds, &b).indices(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersect(&ds, &b).indices(), &[2, 3]);
        assert_eq!(a.difference(&ds, &b).indices(), &[0, 1]);
        assert!(a.intersect(&ds, &b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&Subset::full(&ds)));
        // Counts stay consistent through the algebra.
        assert_eq!(a.union(&ds, &b).class_counts(), &[3, 3]);
        assert_eq!(a.intersect(&ds, &b).class_counts(), &[0, 2]);
    }

    #[test]
    fn contains_and_iter() {
        let ds = tiny();
        let s = Subset::from_indices(&ds, vec![1, 3, 5]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(!s.contains(1000), "out-of-range probes are simply absent");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_edge_cases() {
        let ds = tiny();
        let e = Subset::empty(2);
        let f = Subset::full(&ds);
        assert_eq!(e.difference_len(&f), 0);
        assert_eq!(f.difference_len(&e), 6);
        assert!(e.is_subset_of(&f));
        assert_eq!(e.union(&ds, &f), f);
        assert_eq!(e.intersect(&ds, &f), e);
    }

    #[test]
    fn representation_is_canonical() {
        // However a set becomes empty (or loses its top rows), its word
        // vector is trimmed, so structural equality is set equality.
        let ds = tiny();
        let f = Subset::full(&ds);
        let emptied = f.filter(&ds, |_| false);
        assert_eq!(emptied, Subset::empty(2));
        assert!(emptied.words().is_empty());
        let low = f.filter(&ds, |r| r < 2);
        assert_eq!(low, Subset::from_indices(&ds, vec![0, 1]));
        assert_eq!(low.words().len(), 1);
        let (yes, no) = f.partition(&ds, |_| true);
        assert_eq!(yes, f);
        assert_eq!(no, Subset::empty(2));
        // Differences and intersections trim too.
        assert_eq!(f.difference(&ds, &f), Subset::empty(2));
        assert_eq!(f.intersect(&ds, &Subset::empty(2)), Subset::empty(2));
        assert_eq!(
            f.filter_class(&ds, 0).filter_class(&ds, 1),
            Subset::empty(2)
        );
    }

    #[test]
    fn hash_consing_clone_and_equality_fast_paths() {
        let ds = tiny();
        let a = Subset::from_indices(&ds, vec![0, 2, 4]);
        // Clone shares the payload: no new allocation, identical hash.
        let c = a.clone();
        assert!(a.shares_repr(&c));
        assert_eq!(a.content_hash(), c.content_hash());
        assert_eq!(a, c);
        // Equal sets built independently: equal value and hash, distinct
        // allocations until interned.
        let b = Subset::from_indices(&ds, vec![4, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        assert!(!a.shares_repr(&b));
        // Distinct sets: (virtually always) distinct hashes, never equal.
        let d = Subset::from_indices(&ds, vec![0, 2, 5]);
        assert_ne!(a, d);
        // Hashing through the std machinery writes the precomputed hash.
        use std::collections::hash_map::DefaultHasher;
        let h = |s: &Subset| {
            let mut st = DefaultHasher::new();
            s.hash(&mut st);
            st.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn interner_canonicalises_payloads() {
        let ds = tiny();
        let mut interner = SubsetInterner::new();
        assert!(interner.is_empty());
        let a = Subset::from_indices(&ds, vec![1, 3]);
        let (ca, hit) = interner.intern(&a);
        assert!(!hit, "first view is a miss");
        assert!(ca.shares_repr(&a), "the first view becomes canonical");
        // An equal payload from a different construction path is rewired.
        let b = Subset::full(&ds).filter(&ds, |r| r == 1 || r == 3);
        assert!(!b.shares_repr(&a));
        let (cb, hit) = interner.intern(&b);
        assert!(hit);
        assert!(cb.shares_repr(&a));
        assert_eq!(cb, b);
        // A distinct payload gets its own canonical entry.
        let (cc, hit) = interner.intern(&Subset::empty(2));
        assert!(!hit);
        assert_eq!(cc, Subset::empty(2));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn multi_word_sets() {
        // 130 rows span three words; exercise the word boundaries.
        let rows: Vec<(Vec<f64>, ClassId)> = (0..130)
            .map(|i| (vec![i as f64], (i % 2) as ClassId))
            .collect();
        let ds = Dataset::from_rows(Schema::real(1, 2), &rows).unwrap();
        let f = Subset::full(&ds);
        assert_eq!(f.words().len(), 3);
        assert_eq!(f.len(), 130);
        assert_eq!(f.class_counts(), &[65, 65]);
        let edges = Subset::from_indices(&ds, vec![0, 63, 64, 127, 128, 129]);
        assert_eq!(edges.indices(), &[0, 63, 64, 127, 128, 129]);
        assert_eq!(edges.len(), 6);
        assert!(edges.is_subset_of(&f));
        assert_eq!(f.difference_len(&edges), 124);
        let evens = f.filter(&ds, |r| r % 2 == 0);
        assert_eq!(evens.len(), 65);
        assert!(evens.is_pure());
        assert_eq!(evens, f.filter_class(&ds, 0));
        assert_eq!(evens.union(&ds, &f.filter_class(&ds, 1)), f);
    }
}
