#![warn(missing_docs)]

//! Dataset substrate for the Antidote poisoning-robustness prover.
//!
//! This crate provides everything the learner and the abstract interpreter
//! need to talk about training data:
//!
//! * [`Dataset`] — an immutable, columnar labelled dataset ([`Column::Bool`]
//!   or [`Column::Real`] features, integer class labels described by a
//!   [`Schema`]);
//! * [`Subset`] — a cheap word-packed row-bitset view into a dataset with
//!   cached per-class counts and word-parallel set algebra. Both the
//!   concrete learner `DTrace` and the abstract training sets `⟨T,n⟩` are
//!   built on `Subset`;
//! * [`synth`] — deterministic synthetic generators for the five benchmark
//!   datasets of the paper's evaluation (§6.1, Table 1), plus the paper's
//!   Figure 2 running example and generic blob generators;
//! * [`csv`] — a small hand-rolled CSV loader/writer so real UCI/MNIST data
//!   can be substituted in when available;
//! * [`split`] — train/test splitting utilities;
//! * [`simd`] — the chunked (4×`u64`) word kernels the subset algebra
//!   dispatches through, with a bit-identical scalar fallback behind the
//!   `--no-simd` escape hatch and the default-on `simd` cargo feature;
//! * [`arena`] — a frontier-lifetime recycling arena ([`WordArena`]) for
//!   the learner's word-buffer scratch;
//! * [`registry`] — the service-mode [`DatasetRegistry`]: handles →
//!   epoch-stamped `Arc<Dataset>`s with indexes warmed at load time and
//!   atomic delta application.
//!
//! # Example
//!
//! ```
//! use antidote_data::{synth, Subset};
//!
//! let ds = synth::figure2();
//! assert_eq!(ds.len(), 13);
//! let all = Subset::full(&ds);
//! // 7 white points (class 0) and 6 black points (class 1).
//! assert_eq!(all.class_counts(), &[7, 6]);
//! ```

pub mod arena;
pub mod benchmark;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod registry;
pub mod simd;
pub mod split;
pub mod stats;
pub mod subset;
pub mod synth;

pub use arena::WordArena;
pub use benchmark::{Benchmark, Scale};
pub use dataset::{
    Column, Dataset, DatasetBuilder, DatasetDelta, DeltaSummary, FeatureKind, Schema,
};
pub use error::DataError;
pub use registry::DatasetRegistry;
pub use split::train_test_split;
pub use stats::DatasetStats;
pub use subset::{Subset, SubsetInterner, ThresholdCmp};

/// Row index into a [`Dataset`]. `u32` keeps index vectors compact; datasets
/// above `u32::MAX` rows are rejected at construction time.
pub type RowId = u32;

/// Class label. Classes are dense integers `0..n_classes`.
pub type ClassId = u16;
