//! Immutable, columnar labelled datasets.
//!
//! A [`Dataset`] stores features column-major so that split-search sweeps
//! (the hot loop of both the concrete and the abstract learner) touch one
//! contiguous column at a time. Datasets are immutable after construction;
//! every later stage of the pipeline works with [`crate::Subset`] index
//! views instead of copying rows.

use crate::error::DataError;
use crate::{ClassId, RowId};

/// The kind of values a feature column holds.
///
/// The paper distinguishes Boolean predicates (MNIST-1-7-Binary) from
/// real-valued features with dynamically chosen thresholds (§5.1); the
/// distinction lives here, on the column, and the predicate generator in
/// `antidote-tree` consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Boolean feature: predicates test the bit directly.
    Bool,
    /// Real-valued feature: predicates are thresholds `x_i ≤ τ` with τ chosen
    /// between adjacent observed values.
    Real,
}

/// Description of one feature column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Feature {
    /// Human-readable feature name (used by CSV I/O and diagnostics).
    pub name: String,
    /// Kind of values this feature holds.
    pub kind: FeatureKind,
}

/// Dataset schema: feature descriptions plus class names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    features: Vec<Feature>,
    classes: Vec<String>,
}

impl Schema {
    /// Creates a schema from feature descriptions and class names.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptySchema`] if either list is empty.
    pub fn new(features: Vec<Feature>, classes: Vec<String>) -> Result<Self, DataError> {
        if features.is_empty() || classes.is_empty() {
            return Err(DataError::EmptySchema);
        }
        Ok(Schema { features, classes })
    }

    /// Convenience constructor: `n` real-valued features named `x0..` and
    /// classes named `c0..`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` or `n_classes` is zero.
    pub fn real(n_features: usize, n_classes: usize) -> Self {
        Self::homogeneous(n_features, n_classes, FeatureKind::Real)
    }

    /// Convenience constructor: `n` boolean features named `x0..` and classes
    /// named `c0..`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` or `n_classes` is zero.
    pub fn boolean(n_features: usize, n_classes: usize) -> Self {
        Self::homogeneous(n_features, n_classes, FeatureKind::Bool)
    }

    fn homogeneous(n_features: usize, n_classes: usize, kind: FeatureKind) -> Self {
        assert!(n_features > 0 && n_classes > 0, "schema must be non-empty");
        Schema {
            features: (0..n_features)
                .map(|i| Feature {
                    name: format!("x{i}"),
                    kind,
                })
                .collect(),
            classes: (0..n_classes).map(|i| format!("c{i}")).collect(),
        }
    }

    /// The feature descriptions, in column order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The class names, indexed by [`ClassId`].
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Renames the classes (e.g. `["white", "black"]`). Extra names are
    /// ignored; missing names keep their defaults.
    pub fn with_class_names<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        names: I,
    ) -> Self {
        for (slot, name) in self.classes.iter_mut().zip(names) {
            *slot = name.into();
        }
        self
    }
}

/// One feature column of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// A boolean column.
    Bool(Vec<bool>),
    /// A real-valued column (always finite).
    Real(Vec<f64>),
}

impl Column {
    /// Value at `row`, as `f64` (`false → 0.0`, `true → 1.0`).
    #[inline]
    pub fn value(&self, row: RowId) -> f64 {
        match self {
            Column::Bool(v) => {
                if v[row as usize] {
                    1.0
                } else {
                    0.0
                }
            }
            Column::Real(v) => v[row as usize],
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Real(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The kind of this column.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Column::Bool(_) => FeatureKind::Bool,
            Column::Real(_) => FeatureKind::Real,
        }
    }
}

/// An immutable labelled dataset.
///
/// Construct with [`DatasetBuilder`] (row-at-a-time, validated) or
/// [`Dataset::from_rows`] (bulk). All values are finite; labels are dense in
/// `0..n_classes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<ClassId>,
}

impl Dataset {
    /// Builds a dataset from rows of `f64` values (booleans as 0/1).
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`DatasetBuilder::push_row`].
    pub fn from_rows(schema: Schema, rows: &[(Vec<f64>, ClassId)]) -> Result<Self, DataError> {
        let mut b = DatasetBuilder::new(schema);
        for (values, label) in rows {
            b.push_row(values, *label)?;
        }
        Ok(b.finish())
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.schema.n_features()
    }

    /// Number of classes (`k` in the paper).
    pub fn n_classes(&self) -> usize {
        self.schema.n_classes()
    }

    /// Feature value of `row` in column `feature`, as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `feature` is out of bounds.
    #[inline]
    pub fn value(&self, row: RowId, feature: usize) -> f64 {
        self.columns[feature].value(row)
    }

    /// Class label of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn label(&self, row: RowId) -> ClassId {
        self.labels[row as usize]
    }

    /// All labels, indexed by row.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// The feature columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Copies out the feature vector of one row (handy for using dataset rows
    /// as test inputs).
    pub fn row_values(&self, row: RowId) -> Vec<f64> {
        (0..self.n_features()).map(|f| self.value(row, f)).collect()
    }

    /// Per-class row counts for the whole dataset.
    pub fn class_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_classes()];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// Projects the dataset onto a subset of its feature columns (labels
    /// unchanged). Used by the random-subspace forest learner, where each
    /// tree sees its own feature subset.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or contains an out-of-range index.
    pub fn select_features(&self, features: &[usize]) -> Dataset {
        assert!(
            !features.is_empty(),
            "a projection needs at least one feature"
        );
        let columns: Vec<Column> = features.iter().map(|&f| self.columns[f].clone()).collect();
        let schema = Schema::new(
            features
                .iter()
                .map(|&f| self.schema.features()[f].clone())
                .collect(),
            self.schema.classes().to_vec(),
        )
        .expect("projection of a valid schema is valid");
        Dataset {
            schema,
            columns,
            labels: self.labels.clone(),
        }
    }

    /// Approximate in-memory footprint in bytes (used by the benchmark
    /// harness's memory-proxy accounting).
    pub fn approx_bytes(&self) -> usize {
        let cols: usize = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Bool(v) => v.len(),
                Column::Real(v) => v.len() * 8,
            })
            .sum();
        cols + self.labels.len() * 2
    }
}

/// Validating row-at-a-time builder for [`Dataset`].
///
/// ```
/// use antidote_data::{DatasetBuilder, Schema};
///
/// # fn main() -> Result<(), antidote_data::DataError> {
/// let mut b = DatasetBuilder::new(Schema::real(2, 2));
/// b.push_row(&[0.5, 1.0], 0)?;
/// b.push_row(&[1.5, -1.0], 1)?;
/// let ds = b.finish();
/// assert_eq!(ds.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<ClassId>,
}

impl DatasetBuilder {
    /// Creates an empty builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .features()
            .iter()
            .map(|f| match f.kind {
                FeatureKind::Bool => Column::Bool(Vec::new()),
                FeatureKind::Real => Column::Real(Vec::new()),
            })
            .collect();
        DatasetBuilder {
            schema,
            columns,
            labels: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// * [`DataError::ArityMismatch`] — wrong number of values;
    /// * [`DataError::LabelOutOfRange`] — label ≥ number of classes;
    /// * [`DataError::NonFiniteValue`] — NaN/∞ in a real column;
    /// * [`DataError::NotBoolean`] — value other than 0/1 in a bool column;
    /// * [`DataError::TooManyRows`] — more than `u32::MAX` rows.
    pub fn push_row(&mut self, values: &[f64], label: ClassId) -> Result<(), DataError> {
        let row = self.labels.len();
        if values.len() != self.schema.n_features() {
            return Err(DataError::ArityMismatch {
                row,
                got: values.len(),
                expected: self.schema.n_features(),
            });
        }
        if (label as usize) >= self.schema.n_classes() {
            return Err(DataError::LabelOutOfRange {
                row,
                label,
                n_classes: self.schema.n_classes(),
            });
        }
        if row >= u32::MAX as usize {
            return Err(DataError::TooManyRows);
        }
        // Validate all values before mutating any column, so a failed push
        // leaves the builder unchanged.
        for (feature, (&v, col)) in values.iter().zip(&self.columns).enumerate() {
            match col {
                Column::Real(_) if !v.is_finite() => {
                    return Err(DataError::NonFiniteValue { row, feature });
                }
                Column::Bool(_) if v != 0.0 && v != 1.0 => {
                    return Err(DataError::NotBoolean {
                        row,
                        feature,
                        value: v,
                    });
                }
                _ => {}
            }
        }
        for (&v, col) in values.iter().zip(&mut self.columns) {
            match col {
                Column::Bool(c) => c.push(v == 1.0),
                Column::Real(c) => c.push(v),
            }
        }
        self.labels.push(label);
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Finalises the dataset.
    pub fn finish(self) -> Dataset {
        Dataset {
            schema: self.schema,
            columns: self.columns,
            labels: self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2x2() -> Schema {
        Schema::real(2, 2)
    }

    #[test]
    fn build_and_access() {
        let ds = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![1.0, 2.0], 0),
                (vec![3.0, 4.0], 1),
                (vec![5.0, 6.0], 0),
            ],
        )
        .unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.value(1, 0), 3.0);
        assert_eq!(ds.value(2, 1), 6.0);
        assert_eq!(ds.label(1), 1);
        assert_eq!(ds.class_counts(), vec![2, 1]);
        assert_eq!(ds.row_values(0), vec![1.0, 2.0]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        let err = b.push_row(&[1.0], 0).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                got: 1,
                expected: 2,
                ..
            }
        ));
        assert!(b.is_empty(), "failed push must not mutate the builder");
    }

    #[test]
    fn label_out_of_range_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        let err = b.push_row(&[1.0, 2.0], 2).unwrap_err();
        assert!(matches!(
            err,
            DataError::LabelOutOfRange {
                label: 2,
                n_classes: 2,
                ..
            }
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        assert!(matches!(
            b.push_row(&[f64::NAN, 0.0], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 0, .. }
        ));
        assert!(matches!(
            b.push_row(&[0.0, f64::INFINITY], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 1, .. }
        ));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn boolean_column_accepts_only_bits() {
        let mut b = DatasetBuilder::new(Schema::boolean(1, 2));
        b.push_row(&[0.0], 0).unwrap();
        b.push_row(&[1.0], 1).unwrap();
        let err = b.push_row(&[0.5], 0).unwrap_err();
        assert!(matches!(err, DataError::NotBoolean { value, .. } if value == 0.5));
        let ds = b.finish();
        assert_eq!(ds.value(0, 0), 0.0);
        assert_eq!(ds.value(1, 0), 1.0);
        assert_eq!(ds.columns()[0].kind(), FeatureKind::Bool);
    }

    #[test]
    fn failed_push_keeps_columns_aligned() {
        // A row that fails validation on the *second* column must not leave a
        // value behind in the first.
        let schema = Schema::new(
            vec![
                Feature {
                    name: "a".into(),
                    kind: FeatureKind::Real,
                },
                Feature {
                    name: "b".into(),
                    kind: FeatureKind::Bool,
                },
            ],
            vec!["c0".into(), "c1".into()],
        )
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        assert!(b.push_row(&[1.0, 0.7], 0).is_err());
        b.push_row(&[2.0, 1.0], 1).unwrap();
        let ds = b.finish();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.value(0, 0), 2.0);
        assert_eq!(ds.value(0, 1), 1.0);
    }

    #[test]
    fn schema_helpers() {
        let s = Schema::boolean(3, 2).with_class_names(["one", "seven"]);
        assert_eq!(s.classes(), &["one".to_string(), "seven".to_string()]);
        assert_eq!(s.n_features(), 3);
        assert!(s.features().iter().all(|f| f.kind == FeatureKind::Bool));
        assert!(Schema::new(vec![], vec!["a".into()]).is_err());
    }

    #[test]
    fn select_features_projects_columns() {
        let ds = Dataset::from_rows(
            Schema::real(3, 2),
            &[(vec![1.0, 2.0, 3.0], 0), (vec![4.0, 5.0, 6.0], 1)],
        )
        .unwrap();
        let p = ds.select_features(&[2, 0]);
        assert_eq!(p.n_features(), 2);
        assert_eq!(p.value(0, 0), 3.0);
        assert_eq!(p.value(0, 1), 1.0);
        assert_eq!(p.value(1, 0), 6.0);
        assert_eq!(p.label(1), 1);
        assert_eq!(p.schema().features()[0].name, "x2");
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn select_features_rejects_empty() {
        let ds = Dataset::from_rows(schema2x2(), &[(vec![0.0, 0.0], 0)]).unwrap();
        let _ = ds.select_features(&[]);
    }

    #[test]
    fn approx_bytes_scales_with_size() {
        let small = Dataset::from_rows(schema2x2(), &[(vec![0.0, 0.0], 0)]).unwrap();
        let rows: Vec<_> = (0..100).map(|i| (vec![i as f64, 0.0], 0)).collect();
        let big = Dataset::from_rows(schema2x2(), &rows).unwrap();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
