//! Immutable, columnar labelled datasets.
//!
//! A [`Dataset`] stores features column-major so that split-search sweeps
//! (the hot loop of both the concrete and the abstract learner) touch one
//! contiguous column at a time. Datasets are immutable after construction;
//! every later stage of the pipeline works with [`crate::Subset`] index
//! views instead of copying rows.
//!
//! # Epochs and deltas
//!
//! A dataset is *versioned*: every dataset carries an [`Dataset::epoch`]
//! stamp, and [`Dataset::apply`] turns a [`DatasetDelta`] (appends, row
//! removals, label flips) into a **new** dataset at `epoch + 1` without
//! touching — or rebuilding — the original. Row ids are *stable slots*:
//! a removed row's id is never reused and never remapped, so certificates,
//! witnesses, and caches keyed by row id stay meaningful across epochs.
//! Dead slots keep their storage but are excluded from the live-row mask,
//! the class masks, and every subset built via [`crate::Subset::full`];
//! the split sweeps filter the per-feature orders by subset membership, so
//! dead slots can never contribute a candidate threshold. Unchanged
//! storage (columns, labels, per-feature orders, built threshold indexes)
//! is structurally shared between epochs wherever the delta leaves it
//! valid, and *patched* behind fresh cells where it does not — an old
//! epoch's clone can never observe a patched index.

use crate::error::DataError;
use crate::{ClassId, RowId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

/// The kind of values a feature column holds.
///
/// The paper distinguishes Boolean predicates (MNIST-1-7-Binary) from
/// real-valued features with dynamically chosen thresholds (§5.1); the
/// distinction lives here, on the column, and the predicate generator in
/// `antidote-tree` consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Boolean feature: predicates test the bit directly.
    Bool,
    /// Real-valued feature: predicates are thresholds `x_i ≤ τ` with τ chosen
    /// between adjacent observed values.
    Real,
}

/// Description of one feature column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Feature {
    /// Human-readable feature name (used by CSV I/O and diagnostics).
    pub name: String,
    /// Kind of values this feature holds.
    pub kind: FeatureKind,
}

/// Dataset schema: feature descriptions plus class names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    features: Vec<Feature>,
    classes: Vec<String>,
}

impl Schema {
    /// Creates a schema from feature descriptions and class names.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptySchema`] if either list is empty.
    pub fn new(features: Vec<Feature>, classes: Vec<String>) -> Result<Self, DataError> {
        if features.is_empty() || classes.is_empty() {
            return Err(DataError::EmptySchema);
        }
        Ok(Schema { features, classes })
    }

    /// Convenience constructor: `n` real-valued features named `x0..` and
    /// classes named `c0..`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` or `n_classes` is zero.
    pub fn real(n_features: usize, n_classes: usize) -> Self {
        Self::homogeneous(n_features, n_classes, FeatureKind::Real)
    }

    /// Convenience constructor: `n` boolean features named `x0..` and classes
    /// named `c0..`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` or `n_classes` is zero.
    pub fn boolean(n_features: usize, n_classes: usize) -> Self {
        Self::homogeneous(n_features, n_classes, FeatureKind::Bool)
    }

    fn homogeneous(n_features: usize, n_classes: usize, kind: FeatureKind) -> Self {
        assert!(n_features > 0 && n_classes > 0, "schema must be non-empty");
        Schema {
            features: (0..n_features)
                .map(|i| Feature {
                    name: format!("x{i}"),
                    kind,
                })
                .collect(),
            classes: (0..n_classes).map(|i| format!("c{i}")).collect(),
        }
    }

    /// The feature descriptions, in column order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The class names, indexed by [`ClassId`].
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Renames the classes (e.g. `["white", "black"]`). Extra names are
    /// ignored; missing names keep their defaults.
    pub fn with_class_names<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        names: I,
    ) -> Self {
        for (slot, name) in self.classes.iter_mut().zip(names) {
            *slot = name.into();
        }
        self
    }
}

/// One feature column of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// A boolean column.
    Bool(Vec<bool>),
    /// A real-valued column (always finite).
    Real(Vec<f64>),
}

impl Column {
    /// Value at `row`, as `f64` (`false → 0.0`, `true → 1.0`).
    #[inline]
    pub fn value(&self, row: RowId) -> f64 {
        match self {
            Column::Bool(v) => {
                if v[row as usize] {
                    1.0
                } else {
                    0.0
                }
            }
            Column::Real(v) => v[row as usize],
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Real(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The kind of this column.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Column::Bool(_) => FeatureKind::Bool,
            Column::Real(_) => FeatureKind::Real,
        }
    }
}

/// An immutable labelled dataset.
///
/// Construct with [`DatasetBuilder`] (row-at-a-time, validated) or
/// [`Dataset::from_rows`] (bulk). All values are finite; labels are dense in
/// `0..n_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    /// Column storage over *slots* (live and dead rows alike), shared
    /// between epochs whenever a delta leaves the values untouched
    /// (removals and label flips share; appends copy-and-extend).
    columns: Arc<Vec<Column>>,
    /// Per-slot labels; shared between epochs unless a flip or append
    /// rewrites them.
    labels: Arc<Vec<ClassId>>,
    /// Mutation generation: 0 for freshly built datasets, bumped by every
    /// [`Dataset::apply`]. Caches keyed by dataset state carry this stamp
    /// so consulting them against a different epoch is a hard error.
    epoch: u64,
    /// Live-slot bitmask, `ceil(n_slots / 64)` words: bit `r` set iff slot
    /// `r` holds a live row. All ones at epoch 0; removals clear bits and
    /// never set them again (dead slots are not reused).
    live: Vec<u64>,
    /// Cached popcount of `live` (the number of live rows).
    n_live: usize,
    /// One row bitmask per class (`masks[c]` has bit `r` set iff slot `r`
    /// is **live** and `labels[r] == c`), each `ceil(n_slots / 64)` words
    /// long. Derived from `labels` at construction and patched word-wise
    /// by [`Dataset::apply`]; [`crate::Subset`]'s word-packed algebra
    /// recomputes per-class counts by AND-popcount against these masks.
    class_masks: Vec<Vec<u64>>,
    /// Per feature: every slot id, sorted ascending by that feature's
    /// value (stable — ties stay in ascending slot order). Split-candidate
    /// sweeps walk this order filtered by a subset's O(1) bit test instead
    /// of gathering and sorting the subset's rows per call, which was the
    /// hottest loop of both the concrete and the abstract learner. Dead
    /// slots stay in the order (every traversal filters by a live-only
    /// subset); appends splice new slots in by stable sorted merge.
    feature_order: Arc<Vec<Vec<RowId>>>,
    /// Per feature: the lazily-built threshold index backing word-parallel
    /// `x ≤ τ` restrictions. Wrapped in `Arc<OnceLock<…>>` so commands
    /// that never restrict (stats, accuracy) pay nothing, clones and
    /// feature projections share the built masks, and the inner `None`
    /// marks very-high-cardinality columns (see
    /// [`MAX_THRESHOLD_INDEX_VALUES`]) where callers fall back to the
    /// row-predicate filter. [`Dataset::apply`] shares these cells only
    /// when the delta leaves them valid (pure label flips); otherwise the
    /// new epoch gets *fresh* cells (bit-patched copies of already-built
    /// indexes), so an old epoch's clone can never observe a patched mask.
    threshold_index: Vec<Arc<OnceLock<Option<ThresholdIndex>>>>,
}

/// Two datasets are equal when their schema, feature values, labels, and
/// live-row masks are — the bitmask/order/threshold caches are pure
/// functions of those and deliberately excluded (a lazily-built index
/// must not make a dataset unequal to its clone), and the epoch stamp is
/// an *identity*, not content (a no-op delta yields an equal dataset at a
/// later epoch).
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.live == other.live
            && self.columns == other.columns
            && self.labels == other.labels
    }
}

/// Distinct-value cap above which a feature gets no [`ThresholdIndex`]:
/// the prefix masks cost `distinct × ceil(rows/64)` words, so an
/// effectively-continuous column on a huge dataset would dominate the
/// dataset's own footprint. Every dataset in the evaluation (quantized
/// synthetics, UCI-scale reals, binary pixels) sits far below the cap.
const MAX_THRESHOLD_INDEX_VALUES: usize = 4096;

/// Sorted distinct values of one column plus, per distinct value, the
/// bitmask of rows with value ≤ it — one binary search + one AND pass
/// answers any threshold restriction on the column.
#[derive(Debug, Clone, PartialEq)]
struct ThresholdIndex {
    /// The column's distinct values, ascending (IEEE-distinct: `-0.0` and
    /// `0.0` collapse).
    values: Vec<f64>,
    /// `masks[j]`: bitmask of rows whose value is ≤ `values[j]`.
    masks: Vec<Vec<u64>>,
}

/// Builds one feature's [`ThresholdIndex`] from its value-sorted slot
/// order, or `None` when the column has too many distinct values. Only
/// live slots (per `live`) contribute values or mask bits, so a lazily
/// rebuilt index and a bit-patched one answer [`Dataset::le_mask`]
/// identically.
fn build_threshold_index(col: &Column, order: &[RowId], live: &[u64]) -> Option<ThresholdIndex> {
    let n_words = col.len().div_ceil(64);
    let mut values: Vec<f64> = Vec::new();
    let mut masks: Vec<Vec<u64>> = Vec::new();
    let mut running = vec![0u64; n_words];
    let mut prev: Option<f64> = None;
    for &r in order {
        if live[r as usize / 64] >> (r % 64) & 1 == 0 {
            continue;
        }
        let v = col.value(r);
        if let Some(p) = prev {
            if v > p {
                if values.len() >= MAX_THRESHOLD_INDEX_VALUES {
                    return None;
                }
                values.push(p);
                masks.push(running.clone());
            }
        }
        running[r as usize / 64] |= 1u64 << (r % 64);
        prev = Some(v);
    }
    if let Some(p) = prev {
        if values.len() >= MAX_THRESHOLD_INDEX_VALUES {
            return None;
        }
        values.push(p);
        masks.push(running);
    }
    Some(ThresholdIndex { values, masks })
}

/// Builds the per-class row bitmasks for [`Dataset::class_mask`].
fn build_class_masks(labels: &[ClassId], n_classes: usize) -> Vec<Vec<u64>> {
    let n_words = labels.len().div_ceil(64);
    let mut masks = vec![vec![0u64; n_words]; n_classes];
    for (row, &label) in labels.iter().enumerate() {
        masks[label as usize][row / 64] |= 1u64 << (row % 64);
    }
    masks
}

/// Builds the per-feature value-sorted row orders for
/// [`Dataset::feature_order`].
fn build_feature_order(columns: &[Column]) -> Vec<Vec<RowId>> {
    columns
        .iter()
        .map(|col| {
            let mut order: Vec<RowId> = (0..col.len() as RowId).collect();
            // Stable: equal values keep ascending row order, matching what
            // a stable sort of any subset's rows would produce.
            order.sort_by(|&a, &b| col.value(a).total_cmp(&col.value(b)));
            order
        })
        .collect()
}

impl Dataset {
    /// Builds a dataset from rows of `f64` values (booleans as 0/1).
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`DatasetBuilder::push_row`].
    pub fn from_rows(schema: Schema, rows: &[(Vec<f64>, ClassId)]) -> Result<Self, DataError> {
        let mut b = DatasetBuilder::new(schema);
        for (values, label) in rows {
            b.push_row(values, *label)?;
        }
        Ok(b.finish())
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of **live** rows (dead slots left behind by
    /// [`Dataset::apply`] removals are not counted).
    pub fn len(&self) -> usize {
        self.n_live
    }

    /// Whether the dataset has no live rows.
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    /// The mutation epoch: 0 for freshly built datasets, bumped by every
    /// [`Dataset::apply`] (including no-op deltas — the epoch is an
    /// identity stamp, not a content hash).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of physical row *slots* (live rows plus dead slots). Always
    /// `>= len()`; equal at epoch 0 and after pure appends/flips.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.labels.len()
    }

    /// FNV-1a content hash of exactly what [`PartialEq`] compares:
    /// schema shape, live-slot mask, feature values (IEEE bit patterns),
    /// and labels. Equal datasets fingerprint equally regardless of how
    /// they were built, and the epoch stamp is deliberately excluded —
    /// the warm-state index (`antidote_core::session`) keys on
    /// `(fingerprint, epoch, config)` so two registries that loaded the
    /// same snapshot independently still land on the same warm unit.
    /// O(slots × features) per call; callers that need it repeatedly
    /// (session opens) cache the result.
    pub fn content_fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.schema.n_features() as u64);
        mix(self.schema.n_classes() as u64);
        for f in self.schema.features() {
            mix(matches!(f.kind, FeatureKind::Bool) as u64);
        }
        mix(self.n_slots() as u64);
        for &w in &self.live {
            mix(w);
        }
        for col in self.columns.iter() {
            match col {
                Column::Bool(v) => {
                    for &b in v {
                        mix(b as u64);
                    }
                }
                Column::Real(v) => {
                    for &x in v {
                        mix(x.to_bits());
                    }
                }
            }
        }
        for &l in self.labels.iter() {
            mix(u64::from(l));
        }
        h
    }

    /// Whether slot `row` holds a live row. Out-of-range slots are dead.
    #[inline]
    pub fn is_live(&self, row: RowId) -> bool {
        self.live
            .get(row as usize / 64)
            .is_some_and(|w| w >> (row % 64) & 1 == 1)
    }

    /// The live-slot bitmask (`ceil(n_slots / 64)` words; bit `r` set iff
    /// slot `r` is live). [`crate::Subset::full`] seeds from this.
    #[inline]
    pub fn live_words(&self) -> &[u64] {
        &self.live
    }

    /// Iterator over the live row ids, strictly ascending. The canonical
    /// way to visit "every row" — plain `0..len()` ranges are wrong on
    /// post-removal epochs, where slot ids are not dense.
    pub fn rows(&self) -> impl Iterator<Item = RowId> + '_ {
        (0..self.n_slots() as RowId).filter(|&r| self.is_live(r))
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.schema.n_features()
    }

    /// Number of classes (`k` in the paper).
    pub fn n_classes(&self) -> usize {
        self.schema.n_classes()
    }

    /// Feature value of `row` in column `feature`, as `f64`. Liveness is
    /// *not* checked (this is the innermost loop of every sweep); callers
    /// reach rows through live-only subsets or [`Dataset::rows`].
    ///
    /// # Panics
    ///
    /// Panics if `row` or `feature` is out of bounds.
    #[inline]
    pub fn value(&self, row: RowId, feature: usize) -> f64 {
        self.columns[feature].value(row)
    }

    /// Class label of `row` (liveness unchecked, like [`Dataset::value`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn label(&self, row: RowId) -> ClassId {
        self.labels[row as usize]
    }

    /// All labels, indexed by slot (dead slots keep their last label).
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// The feature columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Copies out the feature vector of one row (handy for using dataset rows
    /// as test inputs).
    pub fn row_values(&self, row: RowId) -> Vec<f64> {
        (0..self.n_features()).map(|f| self.value(row, f)).collect()
    }

    /// Per-class **live** row counts for the whole dataset. The class
    /// masks carry live bits only, so a popcount per class suffices.
    pub fn class_counts(&self) -> Vec<u32> {
        self.class_masks
            .iter()
            .map(|m| m.iter().map(|w| w.count_ones()).sum())
            .collect()
    }

    /// The row bitmask of `class`: bit `r` is set iff row `r` carries that
    /// label. `ceil(len / 64)` words long; the word-parallel backbone of
    /// [`crate::Subset`]'s class-count maintenance.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[inline]
    pub fn class_mask(&self, class: ClassId) -> &[u64] {
        &self.class_masks[class as usize]
    }

    /// All row ids sorted ascending by `feature`'s value (stable: ties in
    /// ascending row order). Computed once at construction; threshold
    /// sweeps restrict it to a subset via [`crate::Subset::contains`]
    /// instead of re-sorting the subset's rows on every call.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    #[inline]
    pub fn feature_order(&self, feature: usize) -> &[RowId] {
        &self.feature_order[feature]
    }

    /// The bitmask of rows whose `feature` value is `≤ tau` (or `< tau`
    /// when `strict`), from the feature's threshold index (built on first
    /// use, then shared by clones and projections). `None` when the column
    /// is too high-cardinality to be indexed (the caller falls back to a
    /// row filter); `Some(&[])` when no row qualifies.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn le_mask(&self, feature: usize, tau: f64, strict: bool) -> Option<&[u64]> {
        let idx = self.threshold_index[feature]
            .get_or_init(|| {
                build_threshold_index(
                    &self.columns[feature],
                    &self.feature_order[feature],
                    &self.live,
                )
            })
            .as_ref()?;
        let j = idx
            .values
            .partition_point(|&v| if strict { v < tau } else { v <= tau });
        Some(if j == 0 { &[] } else { &idx.masks[j - 1] })
    }

    /// Forces construction of every lazily-built index so later reads pay
    /// no first-touch cost: the per-feature threshold indexes behind
    /// [`Dataset::le_mask`] are materialized now (class masks and feature
    /// orders are already built eagerly at construction). A
    /// [`crate::registry::DatasetRegistry`] calls this once per loaded
    /// dataset so every request served from the shared `Arc` finds the
    /// indexes warm.
    pub fn warm_indexes(&self) {
        for f in 0..self.n_features() {
            // Any threshold forces the OnceLock build; the returned mask
            // (or the high-cardinality `None`) is irrelevant here.
            let _ = self.le_mask(f, 0.0, false);
        }
    }

    /// Projects the dataset onto a subset of its feature columns (labels
    /// unchanged). Used by the random-subspace forest learner, where each
    /// tree sees its own feature subset.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or contains an out-of-range index.
    pub fn select_features(&self, features: &[usize]) -> Dataset {
        assert!(
            !features.is_empty(),
            "a projection needs at least one feature"
        );
        let columns: Vec<Column> = features.iter().map(|&f| self.columns[f].clone()).collect();
        let schema = Schema::new(
            features
                .iter()
                .map(|&f| self.schema.features()[f].clone())
                .collect(),
            self.schema.classes().to_vec(),
        )
        .expect("projection of a valid schema is valid");
        Dataset {
            schema,
            columns: Arc::new(columns),
            labels: Arc::clone(&self.labels),
            epoch: self.epoch,
            live: self.live.clone(),
            n_live: self.n_live,
            class_masks: self.class_masks.clone(),
            feature_order: Arc::new(
                features
                    .iter()
                    .map(|&f| self.feature_order[f].clone())
                    .collect(),
            ),
            // Arc-shared: a projected column equals its source column, so
            // the (lazily built) threshold index is shared, not recomputed
            // or deep-copied per projection.
            threshold_index: features
                .iter()
                .map(|&f| Arc::clone(&self.threshold_index[f]))
                .collect(),
        }
    }

    /// Approximate in-memory footprint in bytes (used by the benchmark
    /// harness's memory-proxy accounting).
    pub fn approx_bytes(&self) -> usize {
        let cols: usize = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Bool(v) => v.len(),
                Column::Real(v) => v.len() * 8,
            })
            .sum();
        cols + self.labels.len() * 2 + self.live.len() * 8
    }

    /// Applies `delta`, producing a new dataset at `epoch() + 1`. The
    /// receiver is untouched — it keeps answering for its own epoch —
    /// and unchanged storage is structurally shared rather than copied:
    ///
    /// * removals and flips share the column storage (`Arc` bump);
    /// * removals share the label vector; appends/flips copy it;
    /// * removals and flips share the per-feature slot orders; appends
    ///   splice the new slots in by stable sorted merge;
    /// * pure flips share the built threshold-index cells (thresholds are
    ///   label-independent); removals/appends give the new epoch fresh
    ///   cells holding bit-patched copies of any already-built index.
    ///
    /// Class masks are patched by word-level set/clear, never rebuilt.
    ///
    /// # Errors
    ///
    /// [`DataError::InvalidDelta`] when a removal or flip targets a dead
    /// or out-of-range row, or one delta both removes and flips a row;
    /// [`DataError::LabelOutOfRange`] for a flip to an undeclared class;
    /// appended rows are validated exactly like
    /// [`DatasetBuilder::push_row`].
    pub fn apply(&self, delta: &DatasetDelta) -> Result<Dataset, DataError> {
        Ok(self.apply_summarized(delta)?.0)
    }

    /// [`Dataset::apply`], also returning the [`DeltaSummary`] of what
    /// effectively changed (the input normalized: duplicate removals
    /// collapsed, last flip per row kept, flips to the current label
    /// dropped). The summary is what certificate transfer reasons about.
    ///
    /// # Errors
    ///
    /// See [`Dataset::apply`].
    pub fn apply_summarized(
        &self,
        delta: &DatasetDelta,
    ) -> Result<(Dataset, DeltaSummary), DataError> {
        let old_slots = self.n_slots();
        // --- Normalize and validate ------------------------------------
        let mut removed: BTreeSet<RowId> = BTreeSet::new();
        for &r in &delta.removes {
            if !self.is_live(r) {
                return Err(DataError::InvalidDelta {
                    row: r,
                    reason: "remove targets a row that is not live",
                });
            }
            removed.insert(r);
        }
        let mut flips: BTreeMap<RowId, ClassId> = BTreeMap::new();
        for &(r, c) in &delta.flips {
            if !self.is_live(r) {
                return Err(DataError::InvalidDelta {
                    row: r,
                    reason: "flip targets a row that is not live",
                });
            }
            if removed.contains(&r) {
                return Err(DataError::InvalidDelta {
                    row: r,
                    reason: "row is both removed and flipped in one delta",
                });
            }
            if (c as usize) >= self.n_classes() {
                return Err(DataError::LabelOutOfRange {
                    row: r as usize,
                    label: c,
                    n_classes: self.n_classes(),
                });
            }
            flips.insert(r, c); // last flip per row wins
        }
        flips.retain(|&r, &mut c| self.label(r) != c);
        for (i, (values, label)) in delta.appends.iter().enumerate() {
            let row = old_slots + i;
            if values.len() != self.n_features() {
                return Err(DataError::ArityMismatch {
                    row,
                    got: values.len(),
                    expected: self.n_features(),
                });
            }
            if (*label as usize) >= self.n_classes() {
                return Err(DataError::LabelOutOfRange {
                    row,
                    label: *label,
                    n_classes: self.n_classes(),
                });
            }
            if row >= u32::MAX as usize {
                return Err(DataError::TooManyRows);
            }
            for (feature, (&v, col)) in values.iter().zip(self.columns.iter()).enumerate() {
                match col {
                    Column::Real(_) if !v.is_finite() => {
                        return Err(DataError::NonFiniteValue { row, feature });
                    }
                    Column::Bool(_) if v != 0.0 && v != 1.0 => {
                        return Err(DataError::NotBoolean {
                            row,
                            feature,
                            value: v,
                        });
                    }
                    _ => {}
                }
            }
        }
        let appended = delta.appends.len();
        let new_slots = old_slots + appended;
        let n_words = new_slots.div_ceil(64);

        // --- Columns: share on remove/flip, copy-and-extend on append --
        let columns = if appended == 0 {
            Arc::clone(&self.columns)
        } else {
            let mut cols: Vec<Column> = (*self.columns).clone();
            for (values, _) in &delta.appends {
                for (&v, col) in values.iter().zip(cols.iter_mut()) {
                    match col {
                        Column::Bool(c) => c.push(v == 1.0),
                        Column::Real(c) => c.push(v),
                    }
                }
            }
            Arc::new(cols)
        };

        // --- Labels: share unless flips or appends rewrite them --------
        let labels = if appended == 0 && flips.is_empty() {
            Arc::clone(&self.labels)
        } else {
            let mut l: Vec<ClassId> = (*self.labels).clone();
            for (&r, &c) in &flips {
                l[r as usize] = c;
            }
            l.extend(delta.appends.iter().map(|&(_, c)| c));
            Arc::new(l)
        };

        // --- Live mask: clear removals, set appended slots -------------
        let mut live = self.live.clone();
        live.resize(n_words, 0);
        for &r in &removed {
            live[r as usize / 64] &= !(1u64 << (r % 64));
        }
        for slot in old_slots..new_slots {
            live[slot / 64] |= 1u64 << (slot % 64);
        }
        let n_live = self.n_live - removed.len() + appended;

        // --- Class masks: word-level set/clear patches -----------------
        let mut class_masks = self.class_masks.clone();
        for mask in &mut class_masks {
            mask.resize(n_words, 0);
        }
        for &r in &removed {
            class_masks[self.label(r) as usize][r as usize / 64] &= !(1u64 << (r % 64));
        }
        for (&r, &c) in &flips {
            class_masks[self.label(r) as usize][r as usize / 64] &= !(1u64 << (r % 64));
            class_masks[c as usize][r as usize / 64] |= 1u64 << (r % 64);
        }
        for (i, &(_, c)) in delta.appends.iter().enumerate() {
            let slot = old_slots + i;
            class_masks[c as usize][slot / 64] |= 1u64 << (slot % 64);
        }

        // --- Feature orders: share, or stable sorted merge of appends --
        let feature_order = if appended == 0 {
            Arc::clone(&self.feature_order)
        } else {
            Arc::new(
                (0..self.n_features())
                    .map(|f| {
                        let col = &columns[f];
                        let mut added: Vec<RowId> =
                            (old_slots as RowId..new_slots as RowId).collect();
                        // Stable on the ascending slot ids, matching what
                        // build_feature_order would produce.
                        added.sort_by(|&a, &b| col.value(a).total_cmp(&col.value(b)));
                        merge_orders(&self.feature_order[f], &added, col)
                    })
                    .collect(),
            )
        };

        // --- Threshold indexes: share only when still valid ------------
        let pure_flip = removed.is_empty() && appended == 0;
        let threshold_index = (0..self.n_features())
            .map(|f| {
                if pure_flip {
                    // Thresholds and their prefix masks are label-blind:
                    // the old cells stay exactly right, share them.
                    return Arc::clone(&self.threshold_index[f]);
                }
                // Fresh cell — the old epoch keeps its own (never-patched)
                // index. If the old cell was already built, patch a copy;
                // otherwise leave the new cell to lazy construction.
                let cell = Arc::new(OnceLock::new());
                match self.threshold_index[f].get() {
                    None => {}
                    Some(None) => {
                        // Over the cardinality cap before the delta; a
                        // removal can only shrink and an append only grow
                        // the distinct count, but `None` (fall back to the
                        // row filter) is always a sound answer — keep it.
                        let _ = cell.set(None);
                    }
                    Some(Some(idx)) => {
                        let appends: Vec<(usize, f64)> = (0..appended)
                            .map(|i| {
                                let slot = old_slots + i;
                                (slot, columns[f].value(slot as RowId))
                            })
                            .collect();
                        let _ = cell.set(patch_threshold_index(idx, &removed, &appends, n_words));
                    }
                }
                cell
            })
            .collect();

        let summary = DeltaSummary {
            appended,
            removed: removed.iter().copied().collect(),
            flipped: flips.keys().copied().collect(),
        };
        let ds = Dataset {
            schema: self.schema.clone(),
            columns,
            labels,
            epoch: self.epoch + 1,
            live,
            n_live,
            class_masks,
            feature_order,
            threshold_index,
        };
        Ok((ds, summary))
    }
}

/// Stable merge of an existing value-sorted slot order with the sorted
/// freshly appended slots: equal values keep ascending slot order, and
/// every appended slot id exceeds every existing one, so existing slots
/// win ties. The result equals what [`build_feature_order`] would produce
/// over the extended column.
fn merge_orders(existing: &[RowId], added: &[RowId], col: &Column) -> Vec<RowId> {
    let mut out = Vec::with_capacity(existing.len() + added.len());
    let (mut i, mut j) = (0, 0);
    while i < existing.len() && j < added.len() {
        if col.value(existing[i]) <= col.value(added[j]) {
            out.push(existing[i]);
            i += 1;
        } else {
            out.push(added[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&existing[i..]);
    out.extend_from_slice(&added[j..]);
    out
}

/// Bit-patches a built [`ThresholdIndex`] for a delta: removed slots are
/// cleared from every prefix mask, value entries no live slot holds any
/// more are dropped (their prefix mask collapses onto the preceding
/// entry's, which is how a stale value is detected), and appended
/// `(slot, value)` pairs extend the masks and splice in any new distinct
/// values. The result is structurally identical to what a lazy rebuild
/// at the new epoch would produce. Returns `None` when the patched index
/// would exceed [`MAX_THRESHOLD_INDEX_VALUES`].
fn patch_threshold_index(
    idx: &ThresholdIndex,
    removed: &BTreeSet<RowId>,
    appends: &[(usize, f64)],
    n_words: usize,
) -> Option<ThresholdIndex> {
    let mut values = idx.values.clone();
    let mut masks: Vec<Vec<u64>> = idx
        .masks
        .iter()
        .map(|m| {
            let mut m = m.clone();
            m.resize(n_words, 0);
            m
        })
        .collect();
    if !removed.is_empty() {
        for &r in removed {
            let (w, bit) = (r as usize / 64, 1u64 << (r % 64));
            for m in &mut masks {
                m[w] &= !bit;
            }
        }
        // A value whose prefix mask now equals its predecessor's has no
        // live slot left: drop it, matching a from-scratch build.
        let zeros = vec![0u64; n_words];
        let mut kept = 0;
        for i in 0..values.len() {
            let prev: &[u64] = if kept == 0 { &zeros } else { &masks[kept - 1] };
            if masks[i] != prev {
                values.swap(kept, i);
                masks.swap(kept, i);
                kept += 1;
            }
        }
        values.truncate(kept);
        masks.truncate(kept);
    }
    for &(slot, v) in appends {
        let p = values.partition_point(|&x| x < v);
        if p == values.len() || values[p] != v {
            if values.len() >= MAX_THRESHOLD_INDEX_VALUES {
                return None;
            }
            let base = if p == 0 {
                vec![0u64; n_words]
            } else {
                masks[p - 1].clone()
            };
            values.insert(p, v);
            masks.insert(p, base);
        }
        let (w, bit) = (slot / 64, 1u64 << (slot % 64));
        for m in &mut masks[p..] {
            m[w] |= bit;
        }
    }
    Some(ThresholdIndex { values, masks })
}

/// A batch of dataset mutations: appended rows, removed rows, and label
/// flips, applied atomically by [`Dataset::apply`] to produce the next
/// epoch. Building a delta performs no validation — rows are checked
/// against the dataset the delta is applied to.
///
/// ```
/// use antidote_data::{Dataset, DatasetDelta, Schema};
///
/// # fn main() -> Result<(), antidote_data::DataError> {
/// let ds = Dataset::from_rows(
///     Schema::real(1, 2),
///     &[(vec![0.0], 0), (vec![1.0], 1), (vec![2.0], 1)],
/// )?;
/// let mut delta = DatasetDelta::new();
/// delta.remove(1).flip_label(0, 1).append(&[3.0], 0);
/// let next = ds.apply(&delta)?;
/// assert_eq!(next.epoch(), 1);
/// assert_eq!(next.len(), 3);
/// assert_eq!(ds.len(), 3, "the old epoch is untouched");
/// assert!(!next.is_live(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DatasetDelta {
    appends: Vec<(Vec<f64>, ClassId)>,
    removes: Vec<RowId>,
    flips: Vec<(RowId, ClassId)>,
}

impl DatasetDelta {
    /// An empty delta (applying it still bumps the epoch).
    pub fn new() -> Self {
        DatasetDelta::default()
    }

    /// Queues a row append (validated like [`DatasetBuilder::push_row`]
    /// at apply time). The row lands in a fresh slot past `n_slots()`.
    pub fn append(&mut self, values: &[f64], label: ClassId) -> &mut Self {
        self.appends.push((values.to_vec(), label));
        self
    }

    /// Queues a row removal. Duplicate removals of one row collapse.
    pub fn remove(&mut self, row: RowId) -> &mut Self {
        self.removes.push(row);
        self
    }

    /// Queues a label flip. The last flip per row wins; a flip to the
    /// row's current label is an effective no-op.
    pub fn flip_label(&mut self, row: RowId, new_label: ClassId) -> &mut Self {
        self.flips.push((row, new_label));
        self
    }

    /// Whether the delta queues no operations at all.
    pub fn is_empty(&self) -> bool {
        self.appends.is_empty() && self.removes.is_empty() && self.flips.is_empty()
    }
}

/// What a [`DatasetDelta`] *effectively* changed, after normalization
/// (duplicate removals collapsed, last flip per row kept, flips to the
/// current label dropped). Certificate transfer keys off this: a sound
/// transfer across the epoch exists only for [`DeltaSummary::pure_removal`]
/// deltas (see `antidote-core`'s cache-transfer docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Number of rows appended.
    pub appended: usize,
    /// Row ids effectively removed, ascending.
    pub removed: Vec<RowId>,
    /// Row ids whose label effectively changed, ascending.
    pub flipped: Vec<RowId>,
}

impl DeltaSummary {
    /// Whether the delta only removed rows (the condition under which a
    /// `Robust(n)` certificate transfers to the next epoch with budget
    /// `n - removed.len()`).
    pub fn pure_removal(&self) -> bool {
        self.appended == 0 && self.flipped.is_empty()
    }

    /// Folds a run of consecutive per-epoch summaries into one summary
    /// describing the whole span, for a single batched certificate
    /// transfer across several epochs at once.
    ///
    /// The fold is **counting-only**: each summary's row ids live in its
    /// own epoch's id space, so the concatenated `removed`/`flipped`
    /// vectors are meaningful as *counts* (and that is all the transfer
    /// rule consumes — the combined shrink is `removed.len()` and
    /// soundness needs only [`DeltaSummary::pure_removal`]). Removed ids
    /// never collide across a chain — a removed slot stays dead forever —
    /// so the concatenation never double-counts a removal.
    ///
    /// # Panics
    ///
    /// Panics when `summaries` is empty: a zero-epoch fold has no
    /// well-defined span.
    pub fn fold(summaries: &[DeltaSummary]) -> DeltaSummary {
        assert!(
            !summaries.is_empty(),
            "DeltaSummary::fold needs at least one epoch"
        );
        let mut removed = Vec::new();
        let mut flipped = Vec::new();
        let mut appended = 0;
        for s in summaries {
            appended += s.appended;
            removed.extend_from_slice(&s.removed);
            flipped.extend_from_slice(&s.flipped);
        }
        DeltaSummary {
            appended,
            removed,
            flipped,
        }
    }
}

/// Validating row-at-a-time builder for [`Dataset`].
///
/// ```
/// use antidote_data::{DatasetBuilder, Schema};
///
/// # fn main() -> Result<(), antidote_data::DataError> {
/// let mut b = DatasetBuilder::new(Schema::real(2, 2));
/// b.push_row(&[0.5, 1.0], 0)?;
/// b.push_row(&[1.5, -1.0], 1)?;
/// let ds = b.finish();
/// assert_eq!(ds.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<ClassId>,
}

impl DatasetBuilder {
    /// Creates an empty builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .features()
            .iter()
            .map(|f| match f.kind {
                FeatureKind::Bool => Column::Bool(Vec::new()),
                FeatureKind::Real => Column::Real(Vec::new()),
            })
            .collect();
        DatasetBuilder {
            schema,
            columns,
            labels: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// * [`DataError::ArityMismatch`] — wrong number of values;
    /// * [`DataError::LabelOutOfRange`] — label ≥ number of classes;
    /// * [`DataError::NonFiniteValue`] — NaN/∞ in a real column;
    /// * [`DataError::NotBoolean`] — value other than 0/1 in a bool column;
    /// * [`DataError::TooManyRows`] — more than `u32::MAX` rows.
    pub fn push_row(&mut self, values: &[f64], label: ClassId) -> Result<(), DataError> {
        let row = self.labels.len();
        if values.len() != self.schema.n_features() {
            return Err(DataError::ArityMismatch {
                row,
                got: values.len(),
                expected: self.schema.n_features(),
            });
        }
        if (label as usize) >= self.schema.n_classes() {
            return Err(DataError::LabelOutOfRange {
                row,
                label,
                n_classes: self.schema.n_classes(),
            });
        }
        if row >= u32::MAX as usize {
            return Err(DataError::TooManyRows);
        }
        // Validate all values before mutating any column, so a failed push
        // leaves the builder unchanged.
        for (feature, (&v, col)) in values.iter().zip(&self.columns).enumerate() {
            match col {
                Column::Real(_) if !v.is_finite() => {
                    return Err(DataError::NonFiniteValue { row, feature });
                }
                Column::Bool(_) if v != 0.0 && v != 1.0 => {
                    return Err(DataError::NotBoolean {
                        row,
                        feature,
                        value: v,
                    });
                }
                _ => {}
            }
        }
        for (&v, col) in values.iter().zip(&mut self.columns) {
            match col {
                Column::Bool(c) => c.push(v == 1.0),
                Column::Real(c) => c.push(v),
            }
        }
        self.labels.push(label);
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Finalises the dataset (at epoch 0, every row live).
    pub fn finish(self) -> Dataset {
        let n = self.labels.len();
        let class_masks = build_class_masks(&self.labels, self.schema.n_classes());
        let feature_order = build_feature_order(&self.columns);
        // Threshold indexes are built lazily on first restriction (see
        // Dataset::le_mask), so loading a dataset for stats/accuracy-style
        // commands pays nothing for them.
        let threshold_index = (0..self.columns.len())
            .map(|_| Arc::new(OnceLock::new()))
            .collect();
        let mut live = vec![!0u64; n / 64];
        if !n.is_multiple_of(64) {
            live.push((1u64 << (n % 64)) - 1);
        }
        Dataset {
            schema: self.schema,
            columns: Arc::new(self.columns),
            labels: Arc::new(self.labels),
            epoch: 0,
            live,
            n_live: n,
            class_masks,
            feature_order: Arc::new(feature_order),
            threshold_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2x2() -> Schema {
        Schema::real(2, 2)
    }

    #[test]
    fn build_and_access() {
        let ds = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![1.0, 2.0], 0),
                (vec![3.0, 4.0], 1),
                (vec![5.0, 6.0], 0),
            ],
        )
        .unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.value(1, 0), 3.0);
        assert_eq!(ds.value(2, 1), 6.0);
        assert_eq!(ds.label(1), 1);
        assert_eq!(ds.class_counts(), vec![2, 1]);
        assert_eq!(ds.row_values(0), vec![1.0, 2.0]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        let err = b.push_row(&[1.0], 0).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                got: 1,
                expected: 2,
                ..
            }
        ));
        assert!(b.is_empty(), "failed push must not mutate the builder");
    }

    #[test]
    fn label_out_of_range_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        let err = b.push_row(&[1.0, 2.0], 2).unwrap_err();
        assert!(matches!(
            err,
            DataError::LabelOutOfRange {
                label: 2,
                n_classes: 2,
                ..
            }
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        assert!(matches!(
            b.push_row(&[f64::NAN, 0.0], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 0, .. }
        ));
        assert!(matches!(
            b.push_row(&[0.0, f64::INFINITY], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 1, .. }
        ));
        assert!(matches!(
            b.push_row(&[f64::NEG_INFINITY, 0.0], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 0, .. }
        ));
        assert_eq!(b.len(), 0);
        // The bulk path rejects identically (it shares the builder).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Dataset::from_rows(schema2x2(), &[(vec![0.0, bad], 0)]),
                Err(DataError::NonFiniteValue { row: 0, feature: 1 })
            ));
        }
        // Extreme-but-finite magnitudes (exponent-form inputs) are fine.
        let ds = Dataset::from_rows(schema2x2(), &[(vec![1e3, -2.5e-2], 0)]).unwrap();
        assert_eq!(ds.value(0, 0), 1000.0);
    }

    #[test]
    fn boolean_column_accepts_only_bits() {
        let mut b = DatasetBuilder::new(Schema::boolean(1, 2));
        b.push_row(&[0.0], 0).unwrap();
        b.push_row(&[1.0], 1).unwrap();
        let err = b.push_row(&[0.5], 0).unwrap_err();
        assert!(matches!(err, DataError::NotBoolean { value, .. } if value == 0.5));
        let ds = b.finish();
        assert_eq!(ds.value(0, 0), 0.0);
        assert_eq!(ds.value(1, 0), 1.0);
        assert_eq!(ds.columns()[0].kind(), FeatureKind::Bool);
    }

    #[test]
    fn failed_push_keeps_columns_aligned() {
        // A row that fails validation on the *second* column must not leave a
        // value behind in the first.
        let schema = Schema::new(
            vec![
                Feature {
                    name: "a".into(),
                    kind: FeatureKind::Real,
                },
                Feature {
                    name: "b".into(),
                    kind: FeatureKind::Bool,
                },
            ],
            vec!["c0".into(), "c1".into()],
        )
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        assert!(b.push_row(&[1.0, 0.7], 0).is_err());
        b.push_row(&[2.0, 1.0], 1).unwrap();
        let ds = b.finish();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.value(0, 0), 2.0);
        assert_eq!(ds.value(0, 1), 1.0);
    }

    #[test]
    fn schema_helpers() {
        let s = Schema::boolean(3, 2).with_class_names(["one", "seven"]);
        assert_eq!(s.classes(), &["one".to_string(), "seven".to_string()]);
        assert_eq!(s.n_features(), 3);
        assert!(s.features().iter().all(|f| f.kind == FeatureKind::Bool));
        assert!(Schema::new(vec![], vec!["a".into()]).is_err());
    }

    #[test]
    fn select_features_projects_columns() {
        let ds = Dataset::from_rows(
            Schema::real(3, 2),
            &[(vec![1.0, 2.0, 3.0], 0), (vec![4.0, 5.0, 6.0], 1)],
        )
        .unwrap();
        let p = ds.select_features(&[2, 0]);
        assert_eq!(p.n_features(), 2);
        assert_eq!(p.value(0, 0), 3.0);
        assert_eq!(p.value(0, 1), 1.0);
        assert_eq!(p.value(1, 0), 6.0);
        assert_eq!(p.label(1), 1);
        assert_eq!(p.schema().features()[0].name, "x2");
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn select_features_rejects_empty() {
        let ds = Dataset::from_rows(schema2x2(), &[(vec![0.0, 0.0], 0)]).unwrap();
        let _ = ds.select_features(&[]);
    }

    #[test]
    fn class_masks_mirror_labels() {
        let rows: Vec<(Vec<f64>, ClassId)> = (0..70)
            .map(|i| (vec![i as f64, 0.0], (i % 3 == 0) as ClassId))
            .collect();
        let ds = Dataset::from_rows(Schema::real(2, 2), &rows).unwrap();
        for class in 0..2 {
            let mask = ds.class_mask(class);
            assert_eq!(mask.len(), 2, "70 rows pack into 2 words");
            for row in 0..ds.len() {
                let bit = mask[row / 64] >> (row % 64) & 1;
                assert_eq!(bit == 1, ds.label(row as RowId) == class, "row {row}");
            }
        }
        // Masks survive feature projection (labels are unchanged).
        let p = ds.select_features(&[1]);
        assert_eq!(p.class_mask(0), ds.class_mask(0));
    }

    #[test]
    fn le_mask_boundaries_and_sharing() {
        let ds = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![1.0, 0.0], 0),
                (vec![2.0, 0.0], 1),
                (vec![2.0, 0.0], 0),
                (vec![4.0, 0.0], 1),
            ],
        )
        .unwrap();
        // Below / between / at / above the observed values.
        assert_eq!(ds.le_mask(0, 0.5, false), Some(&[][..]));
        assert_eq!(ds.le_mask(0, 1.0, false), Some(&[0b0001u64][..]));
        assert_eq!(ds.le_mask(0, 2.0, false), Some(&[0b0111u64][..]));
        assert_eq!(ds.le_mask(0, 2.0, true), Some(&[0b0001u64][..]));
        assert_eq!(ds.le_mask(0, 3.0, false), Some(&[0b0111u64][..]));
        assert_eq!(ds.le_mask(0, 99.0, false), Some(&[0b1111u64][..]));
        // A projection shares the already-built index (same allocation).
        let p = ds.select_features(&[0]);
        let a = ds.le_mask(0, 2.0, false).unwrap().as_ptr();
        let b = p.le_mask(0, 2.0, false).unwrap().as_ptr();
        assert_eq!(a, b, "projections must share the lazily-built masks");
        // Laziness is observational equality: a clone built before first
        // use answers identically.
        assert_eq!(ds.clone().le_mask(0, 2.0, true), ds.le_mask(0, 2.0, true));
    }

    #[test]
    fn feature_order_is_value_sorted_and_tie_stable() {
        let ds = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![3.0, 1.0], 0),
                (vec![1.0, 1.0], 1),
                (vec![3.0, 0.0], 0),
                (vec![2.0, 1.0], 1),
            ],
        )
        .unwrap();
        // Feature 0: value order 1,2,3,3 — the tied 3s keep row order.
        assert_eq!(ds.feature_order(0), &[1, 3, 0, 2]);
        // Feature 1: 0 first, then the tied 1s in ascending row order.
        assert_eq!(ds.feature_order(1), &[2, 0, 1, 3]);
        // Projection keeps the selected features' orders.
        let p = ds.select_features(&[1]);
        assert_eq!(p.feature_order(0), ds.feature_order(1));
    }

    #[test]
    fn approx_bytes_scales_with_size() {
        let small = Dataset::from_rows(schema2x2(), &[(vec![0.0, 0.0], 0)]).unwrap();
        let rows: Vec<_> = (0..100).map(|i| (vec![i as f64, 0.0], 0)).collect();
        let big = Dataset::from_rows(schema2x2(), &rows).unwrap();
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    // ---- Epoch / delta tests -------------------------------------------

    fn five_rows() -> Dataset {
        Dataset::from_rows(
            schema2x2(),
            &[
                (vec![1.0, 9.0], 0),
                (vec![2.0, 8.0], 1),
                (vec![3.0, 7.0], 0),
                (vec![4.0, 6.0], 1),
                (vec![5.0, 5.0], 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_delta_still_bumps_epoch() {
        let ds = five_rows();
        assert_eq!(ds.epoch(), 0);
        let (next, summary) = ds.apply_summarized(&DatasetDelta::new()).unwrap();
        assert_eq!(next.epoch(), 1);
        assert_eq!(
            summary,
            DeltaSummary {
                appended: 0,
                removed: vec![],
                flipped: vec![],
            }
        );
        assert!(summary.pure_removal());
        assert_eq!(next, ds, "content-equal; epochs differ");
    }

    #[test]
    fn content_fingerprint_tracks_equality_not_epoch() {
        let ds = five_rows();
        // Independently built equal datasets fingerprint equally.
        assert_eq!(ds.content_fingerprint(), five_rows().content_fingerprint());
        // A no-op delta bumps the epoch but not the fingerprint...
        let noop = ds.apply(&DatasetDelta::new()).unwrap();
        assert_eq!(noop.epoch(), 1);
        assert_eq!(noop.content_fingerprint(), ds.content_fingerprint());
        // ...while content mutations change it.
        let mut delta = DatasetDelta::new();
        delta.remove(1);
        let removed = ds.apply(&delta).unwrap();
        assert_ne!(removed.content_fingerprint(), ds.content_fingerprint());
        let mut delta = DatasetDelta::new();
        delta.flip_label(0, 1);
        let flipped = ds.apply(&delta).unwrap();
        assert_ne!(flipped.content_fingerprint(), ds.content_fingerprint());
        assert_ne!(flipped.content_fingerprint(), removed.content_fingerprint());
    }

    #[test]
    fn remove_clears_live_and_class_bits_but_shares_storage() {
        let ds = five_rows();
        let mut delta = DatasetDelta::new();
        delta.remove(1).remove(4).remove(1); // duplicate collapses
        let (next, summary) = ds.apply_summarized(&delta).unwrap();
        assert_eq!(summary.removed, vec![1, 4]);
        assert!(summary.pure_removal());
        assert_eq!(next.epoch(), 1);
        assert_eq!(next.len(), 3);
        assert_eq!(next.n_slots(), 5, "slots are stable, never compacted");
        assert!(!next.is_live(1) && !next.is_live(4));
        assert_eq!(next.rows().collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(next.class_counts(), vec![2, 1]);
        // Storage the delta did not touch is shared, not copied.
        assert_eq!(
            ds.columns().as_ptr(),
            next.columns().as_ptr(),
            "removal must share column storage"
        );
        assert_eq!(
            ds.feature_order(0).as_ptr(),
            next.feature_order(0).as_ptr(),
            "removal must share slot orders (subsets filter dead slots)"
        );
        // The prefix masks reflect the removal: live rows 0/2/3 hold
        // values 1/3/4, so `<= 2` catches only row 0 and `<= 5` all three.
        assert_eq!(next.le_mask(0, 2.0, false), Some(&[0b00001u64][..]));
        assert_eq!(next.le_mask(0, 5.0, false), Some(&[0b01101u64][..]));
        // Out-of-range liveness queries are false, not panics.
        assert!(!next.is_live(5));
    }

    #[test]
    fn append_extends_columns_and_merges_orders() {
        let ds = five_rows();
        let mut delta = DatasetDelta::new();
        // 2.0 ties an existing value; 0.5 lands in front; ties between the
        // two appended rows keep append order.
        delta.append(&[2.0, 4.0], 1).append(&[0.5, 4.0], 0);
        let next = ds.apply(&delta).unwrap();
        assert_eq!(next.len(), 7);
        assert_eq!(next.n_slots(), 7);
        assert_eq!(next.value(5, 0), 2.0);
        assert_eq!(next.value(6, 0), 0.5);
        assert_eq!(next.label(5), 1);
        assert_eq!(next.class_counts(), vec![4, 3]);
        // The merged order equals what a from-scratch build produces.
        let rebuilt = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![1.0, 9.0], 0),
                (vec![2.0, 8.0], 1),
                (vec![3.0, 7.0], 0),
                (vec![4.0, 6.0], 1),
                (vec![5.0, 5.0], 0),
                (vec![2.0, 4.0], 1),
                (vec![0.5, 4.0], 0),
            ],
        )
        .unwrap();
        for f in 0..2 {
            assert_eq!(
                next.feature_order(f),
                rebuilt.feature_order(f),
                "feature {f}"
            );
        }
        // The old epoch never sees the appended slots.
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_live(5));
    }

    #[test]
    fn pure_flip_shares_threshold_cells_and_moves_class_bits() {
        let ds = five_rows();
        let before = ds.le_mask(0, 3.0, false).unwrap().as_ptr();
        let mut delta = DatasetDelta::new();
        delta.flip_label(0, 1).flip_label(2, 0); // second is a no-op flip
        let (next, summary) = ds.apply_summarized(&delta).unwrap();
        assert_eq!(summary.flipped, vec![0], "no-op flips are normalized away");
        assert!(!summary.pure_removal());
        assert_eq!(next.label(0), 1);
        assert_eq!(ds.label(0), 0, "old epoch keeps its label");
        assert_eq!(next.class_counts(), vec![2, 3]);
        assert_eq!(
            next.le_mask(0, 3.0, false).unwrap().as_ptr(),
            before,
            "thresholds are label-blind: pure flips share the built cells"
        );
        for class in 0..2u16 {
            for r in next.rows() {
                let bit = next.class_mask(class)[r as usize / 64] >> (r % 64) & 1;
                assert_eq!(bit == 1, next.label(r) == class, "class {class} row {r}");
            }
        }
    }

    #[test]
    fn patched_threshold_index_equals_lazy_rebuild() {
        // Two independently built copies of the same data: force the index
        // on one so its post-delta cells are *patched*, leave the other to
        // rebuild lazily at the new epoch. Both must answer identically.
        let eager = five_rows();
        let lazy = five_rows();
        let _ = eager.le_mask(0, 3.0, false); // build before the delta
        let _ = eager.le_mask(1, 7.0, false);
        let mut delta = DatasetDelta::new();
        delta
            .remove(2)
            .append(&[3.5, 6.5], 1)
            .append(&[1.0, 9.5], 0); // value 1.0 ties slot 0 on feature 0
        let pe = eager.apply(&delta).unwrap();
        let pl = lazy.apply(&delta).unwrap();
        for f in 0..2 {
            for t in [0.4, 0.5, 1.0, 2.0, 3.0, 3.5, 5.0, 6.5, 7.0, 9.5, 10.0] {
                for strict in [false, true] {
                    assert_eq!(
                        pe.le_mask(f, t, strict),
                        pl.le_mask(f, t, strict),
                        "feature {f}, threshold {t}, strict {strict}"
                    );
                }
            }
            assert_eq!(pe.feature_order(f), pl.feature_order(f));
        }
        assert_eq!(pe, pl);
        // A removal-only patch also matches the lazy rebuild, including
        // the stale value entry it may retain.
        let mut rm = DatasetDelta::new();
        rm.remove(0);
        let pe = eager.apply(&rm).unwrap();
        let pl = lazy.apply(&rm).unwrap();
        for t in [0.5, 1.0, 1.5, 5.0] {
            assert_eq!(pe.le_mask(0, t, false), pl.le_mask(0, t, false), "{t}");
        }
    }

    #[test]
    fn old_epoch_clone_is_immune_to_parent_mutation() {
        // The satellite-2 staleness property: a clone taken at epoch e
        // keeps answering for epoch e after the parent is mutated, even
        // for indexes built lazily *after* the mutation.
        let ds = five_rows();
        let clone = ds.clone();
        let pristine = five_rows();
        let mut delta = DatasetDelta::new();
        delta.remove(1).append(&[2.5, 6.0], 1).flip_label(0, 1);
        let next = ds.apply(&delta).unwrap();
        assert_eq!(next.epoch(), 1);
        // The clone still sees epoch-0 data; its lazily built indexes are
        // constructed against its own live set, not the parent's.
        assert_eq!(clone.epoch(), 0);
        assert_eq!(clone.len(), 5);
        assert_eq!(clone.class_counts(), pristine.class_counts());
        for f in 0..2 {
            assert_eq!(clone.feature_order(f), pristine.feature_order(f));
            for t in [0.5, 1.0, 2.0, 2.5, 3.0, 5.0, 9.0] {
                assert_eq!(
                    clone.le_mask(f, t, false),
                    pristine.le_mask(f, t, false),
                    "feature {f}, threshold {t}"
                );
            }
        }
        assert!(clone.is_live(1));
        assert_eq!(clone.label(0), 0);
        assert_eq!(next.label(0), 1);
    }

    #[test]
    fn chained_epochs_keep_every_generation_consistent() {
        let e0 = five_rows();
        let mut d1 = DatasetDelta::new();
        d1.remove(3);
        let e1 = e0.apply(&d1).unwrap();
        let mut d2 = DatasetDelta::new();
        d2.append(&[6.0, 4.0], 1).flip_label(4, 1);
        let e2 = e1.apply(&d2).unwrap();
        assert_eq!((e0.epoch(), e1.epoch(), e2.epoch()), (0, 1, 2));
        assert_eq!((e0.len(), e1.len(), e2.len()), (5, 4, 5));
        assert_eq!(e2.rows().collect::<Vec<_>>(), vec![0, 1, 2, 4, 5]);
        assert_eq!(e2.class_counts(), vec![2, 3]);
        assert_eq!(e0.class_counts(), vec![3, 2]);
        // Removing an already-dead slot at a later epoch is an error.
        let mut bad = DatasetDelta::new();
        bad.remove(3);
        assert!(matches!(
            e2.apply(&bad),
            Err(DataError::InvalidDelta { row: 3, .. })
        ));
    }

    #[test]
    fn invalid_deltas_rejected() {
        let ds = five_rows();
        let mut d = DatasetDelta::new();
        d.remove(7);
        assert!(matches!(
            ds.apply(&d),
            Err(DataError::InvalidDelta { row: 7, .. })
        ));
        let mut d = DatasetDelta::new();
        d.flip_label(9, 0);
        assert!(matches!(
            ds.apply(&d),
            Err(DataError::InvalidDelta { row: 9, .. })
        ));
        let mut d = DatasetDelta::new();
        d.remove(2).flip_label(2, 1);
        assert!(matches!(
            ds.apply(&d),
            Err(DataError::InvalidDelta { row: 2, .. })
        ));
        let mut d = DatasetDelta::new();
        d.flip_label(0, 5);
        assert!(matches!(
            ds.apply(&d),
            Err(DataError::LabelOutOfRange { label: 5, .. })
        ));
        let mut d = DatasetDelta::new();
        d.append(&[1.0], 0);
        assert!(matches!(ds.apply(&d), Err(DataError::ArityMismatch { .. })));
        let mut d = DatasetDelta::new();
        d.append(&[1.0, f64::NAN], 0);
        assert!(matches!(
            ds.apply(&d),
            Err(DataError::NonFiniteValue { feature: 1, .. })
        ));
        // A failed apply leaves the receiver fully intact.
        assert_eq!(ds, five_rows());
        assert_eq!(ds.epoch(), 0);
    }

    #[test]
    fn delta_builder_api() {
        let mut d = DatasetDelta::new();
        assert!(d.is_empty());
        d.remove(0);
        assert!(!d.is_empty());
        let mut d = DatasetDelta::new();
        d.flip_label(1, 0).flip_label(1, 1); // last wins
        let ds = five_rows();
        let (_, summary) = ds.apply_summarized(&d).unwrap();
        assert_eq!(summary.flipped, vec![], "1 already has label 1: no-op");
    }
}
