//! Immutable, columnar labelled datasets.
//!
//! A [`Dataset`] stores features column-major so that split-search sweeps
//! (the hot loop of both the concrete and the abstract learner) touch one
//! contiguous column at a time. Datasets are immutable after construction;
//! every later stage of the pipeline works with [`crate::Subset`] index
//! views instead of copying rows.

use crate::error::DataError;
use crate::{ClassId, RowId};
use std::sync::{Arc, OnceLock};

/// The kind of values a feature column holds.
///
/// The paper distinguishes Boolean predicates (MNIST-1-7-Binary) from
/// real-valued features with dynamically chosen thresholds (§5.1); the
/// distinction lives here, on the column, and the predicate generator in
/// `antidote-tree` consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Boolean feature: predicates test the bit directly.
    Bool,
    /// Real-valued feature: predicates are thresholds `x_i ≤ τ` with τ chosen
    /// between adjacent observed values.
    Real,
}

/// Description of one feature column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Feature {
    /// Human-readable feature name (used by CSV I/O and diagnostics).
    pub name: String,
    /// Kind of values this feature holds.
    pub kind: FeatureKind,
}

/// Dataset schema: feature descriptions plus class names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    features: Vec<Feature>,
    classes: Vec<String>,
}

impl Schema {
    /// Creates a schema from feature descriptions and class names.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptySchema`] if either list is empty.
    pub fn new(features: Vec<Feature>, classes: Vec<String>) -> Result<Self, DataError> {
        if features.is_empty() || classes.is_empty() {
            return Err(DataError::EmptySchema);
        }
        Ok(Schema { features, classes })
    }

    /// Convenience constructor: `n` real-valued features named `x0..` and
    /// classes named `c0..`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` or `n_classes` is zero.
    pub fn real(n_features: usize, n_classes: usize) -> Self {
        Self::homogeneous(n_features, n_classes, FeatureKind::Real)
    }

    /// Convenience constructor: `n` boolean features named `x0..` and classes
    /// named `c0..`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` or `n_classes` is zero.
    pub fn boolean(n_features: usize, n_classes: usize) -> Self {
        Self::homogeneous(n_features, n_classes, FeatureKind::Bool)
    }

    fn homogeneous(n_features: usize, n_classes: usize, kind: FeatureKind) -> Self {
        assert!(n_features > 0 && n_classes > 0, "schema must be non-empty");
        Schema {
            features: (0..n_features)
                .map(|i| Feature {
                    name: format!("x{i}"),
                    kind,
                })
                .collect(),
            classes: (0..n_classes).map(|i| format!("c{i}")).collect(),
        }
    }

    /// The feature descriptions, in column order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The class names, indexed by [`ClassId`].
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Renames the classes (e.g. `["white", "black"]`). Extra names are
    /// ignored; missing names keep their defaults.
    pub fn with_class_names<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        names: I,
    ) -> Self {
        for (slot, name) in self.classes.iter_mut().zip(names) {
            *slot = name.into();
        }
        self
    }
}

/// One feature column of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// A boolean column.
    Bool(Vec<bool>),
    /// A real-valued column (always finite).
    Real(Vec<f64>),
}

impl Column {
    /// Value at `row`, as `f64` (`false → 0.0`, `true → 1.0`).
    #[inline]
    pub fn value(&self, row: RowId) -> f64 {
        match self {
            Column::Bool(v) => {
                if v[row as usize] {
                    1.0
                } else {
                    0.0
                }
            }
            Column::Real(v) => v[row as usize],
        }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Real(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The kind of this column.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Column::Bool(_) => FeatureKind::Bool,
            Column::Real(_) => FeatureKind::Real,
        }
    }
}

/// An immutable labelled dataset.
///
/// Construct with [`DatasetBuilder`] (row-at-a-time, validated) or
/// [`Dataset::from_rows`] (bulk). All values are finite; labels are dense in
/// `0..n_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<ClassId>,
    /// One row bitmask per class (`masks[c]` has bit `r` set iff
    /// `labels[r] == c`), each `ceil(len / 64)` words long. Derived from
    /// `labels` at construction; [`crate::Subset`]'s word-packed algebra
    /// recomputes per-class counts by AND-popcount against these masks.
    class_masks: Vec<Vec<u64>>,
    /// Per feature: every row id, sorted ascending by that feature's value
    /// (stable — ties stay in ascending row order). Split-candidate sweeps
    /// walk this order filtered by a subset's O(1) bit test instead of
    /// gathering and sorting the subset's rows per call, which was the
    /// hottest loop of both the concrete and the abstract learner.
    feature_order: Vec<Vec<RowId>>,
    /// Per feature: the lazily-built threshold index backing word-parallel
    /// `x ≤ τ` restrictions. Wrapped in `Arc<OnceLock<…>>` so commands
    /// that never restrict (stats, accuracy) pay nothing, clones and
    /// feature projections share the built masks, and the inner `None`
    /// marks very-high-cardinality columns (see
    /// [`MAX_THRESHOLD_INDEX_VALUES`]) where callers fall back to the
    /// row-predicate filter.
    threshold_index: Vec<Arc<OnceLock<Option<ThresholdIndex>>>>,
}

/// Two datasets are equal when their schema, feature values, and labels
/// are — the bitmask/order/threshold caches are pure functions of those
/// and deliberately excluded (a lazily-built index must not make a
/// dataset unequal to its clone).
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.columns == other.columns && self.labels == other.labels
    }
}

/// Distinct-value cap above which a feature gets no [`ThresholdIndex`]:
/// the prefix masks cost `distinct × ceil(rows/64)` words, so an
/// effectively-continuous column on a huge dataset would dominate the
/// dataset's own footprint. Every dataset in the evaluation (quantized
/// synthetics, UCI-scale reals, binary pixels) sits far below the cap.
const MAX_THRESHOLD_INDEX_VALUES: usize = 4096;

/// Sorted distinct values of one column plus, per distinct value, the
/// bitmask of rows with value ≤ it — one binary search + one AND pass
/// answers any threshold restriction on the column.
#[derive(Debug, Clone, PartialEq)]
struct ThresholdIndex {
    /// The column's distinct values, ascending (IEEE-distinct: `-0.0` and
    /// `0.0` collapse).
    values: Vec<f64>,
    /// `masks[j]`: bitmask of rows whose value is ≤ `values[j]`.
    masks: Vec<Vec<u64>>,
}

/// Builds one feature's [`ThresholdIndex`] from its value-sorted row
/// order, or `None` when the column has too many distinct values.
fn build_threshold_index(col: &Column, order: &[RowId]) -> Option<ThresholdIndex> {
    let n_words = col.len().div_ceil(64);
    let mut values: Vec<f64> = Vec::new();
    let mut masks: Vec<Vec<u64>> = Vec::new();
    let mut running = vec![0u64; n_words];
    let mut prev: Option<f64> = None;
    for &r in order {
        let v = col.value(r);
        if let Some(p) = prev {
            if v > p {
                if values.len() >= MAX_THRESHOLD_INDEX_VALUES {
                    return None;
                }
                values.push(p);
                masks.push(running.clone());
            }
        }
        running[r as usize / 64] |= 1u64 << (r % 64);
        prev = Some(v);
    }
    if let Some(p) = prev {
        if values.len() >= MAX_THRESHOLD_INDEX_VALUES {
            return None;
        }
        values.push(p);
        masks.push(running);
    }
    Some(ThresholdIndex { values, masks })
}

/// Builds the per-class row bitmasks for [`Dataset::class_mask`].
fn build_class_masks(labels: &[ClassId], n_classes: usize) -> Vec<Vec<u64>> {
    let n_words = labels.len().div_ceil(64);
    let mut masks = vec![vec![0u64; n_words]; n_classes];
    for (row, &label) in labels.iter().enumerate() {
        masks[label as usize][row / 64] |= 1u64 << (row % 64);
    }
    masks
}

/// Builds the per-feature value-sorted row orders for
/// [`Dataset::feature_order`].
fn build_feature_order(columns: &[Column]) -> Vec<Vec<RowId>> {
    columns
        .iter()
        .map(|col| {
            let mut order: Vec<RowId> = (0..col.len() as RowId).collect();
            // Stable: equal values keep ascending row order, matching what
            // a stable sort of any subset's rows would produce.
            order.sort_by(|&a, &b| col.value(a).total_cmp(&col.value(b)));
            order
        })
        .collect()
}

impl Dataset {
    /// Builds a dataset from rows of `f64` values (booleans as 0/1).
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`DatasetBuilder::push_row`].
    pub fn from_rows(schema: Schema, rows: &[(Vec<f64>, ClassId)]) -> Result<Self, DataError> {
        let mut b = DatasetBuilder::new(schema);
        for (values, label) in rows {
            b.push_row(values, *label)?;
        }
        Ok(b.finish())
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.schema.n_features()
    }

    /// Number of classes (`k` in the paper).
    pub fn n_classes(&self) -> usize {
        self.schema.n_classes()
    }

    /// Feature value of `row` in column `feature`, as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `feature` is out of bounds.
    #[inline]
    pub fn value(&self, row: RowId, feature: usize) -> f64 {
        self.columns[feature].value(row)
    }

    /// Class label of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn label(&self, row: RowId) -> ClassId {
        self.labels[row as usize]
    }

    /// All labels, indexed by row.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// The feature columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Copies out the feature vector of one row (handy for using dataset rows
    /// as test inputs).
    pub fn row_values(&self, row: RowId) -> Vec<f64> {
        (0..self.n_features()).map(|f| self.value(row, f)).collect()
    }

    /// Per-class row counts for the whole dataset.
    pub fn class_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_classes()];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// The row bitmask of `class`: bit `r` is set iff row `r` carries that
    /// label. `ceil(len / 64)` words long; the word-parallel backbone of
    /// [`crate::Subset`]'s class-count maintenance.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[inline]
    pub fn class_mask(&self, class: ClassId) -> &[u64] {
        &self.class_masks[class as usize]
    }

    /// All row ids sorted ascending by `feature`'s value (stable: ties in
    /// ascending row order). Computed once at construction; threshold
    /// sweeps restrict it to a subset via [`crate::Subset::contains`]
    /// instead of re-sorting the subset's rows on every call.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    #[inline]
    pub fn feature_order(&self, feature: usize) -> &[RowId] {
        &self.feature_order[feature]
    }

    /// The bitmask of rows whose `feature` value is `≤ tau` (or `< tau`
    /// when `strict`), from the feature's threshold index (built on first
    /// use, then shared by clones and projections). `None` when the column
    /// is too high-cardinality to be indexed (the caller falls back to a
    /// row filter); `Some(&[])` when no row qualifies.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn le_mask(&self, feature: usize, tau: f64, strict: bool) -> Option<&[u64]> {
        let idx = self.threshold_index[feature]
            .get_or_init(|| {
                build_threshold_index(&self.columns[feature], &self.feature_order[feature])
            })
            .as_ref()?;
        let j = idx
            .values
            .partition_point(|&v| if strict { v < tau } else { v <= tau });
        Some(if j == 0 { &[] } else { &idx.masks[j - 1] })
    }

    /// Projects the dataset onto a subset of its feature columns (labels
    /// unchanged). Used by the random-subspace forest learner, where each
    /// tree sees its own feature subset.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or contains an out-of-range index.
    pub fn select_features(&self, features: &[usize]) -> Dataset {
        assert!(
            !features.is_empty(),
            "a projection needs at least one feature"
        );
        let columns: Vec<Column> = features.iter().map(|&f| self.columns[f].clone()).collect();
        let schema = Schema::new(
            features
                .iter()
                .map(|&f| self.schema.features()[f].clone())
                .collect(),
            self.schema.classes().to_vec(),
        )
        .expect("projection of a valid schema is valid");
        Dataset {
            schema,
            columns,
            labels: self.labels.clone(),
            class_masks: self.class_masks.clone(),
            feature_order: features
                .iter()
                .map(|&f| self.feature_order[f].clone())
                .collect(),
            // Arc-shared: a projected column equals its source column, so
            // the (lazily built) threshold index is shared, not recomputed
            // or deep-copied per projection.
            threshold_index: features
                .iter()
                .map(|&f| Arc::clone(&self.threshold_index[f]))
                .collect(),
        }
    }

    /// Approximate in-memory footprint in bytes (used by the benchmark
    /// harness's memory-proxy accounting).
    pub fn approx_bytes(&self) -> usize {
        let cols: usize = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Bool(v) => v.len(),
                Column::Real(v) => v.len() * 8,
            })
            .sum();
        cols + self.labels.len() * 2
    }
}

/// Validating row-at-a-time builder for [`Dataset`].
///
/// ```
/// use antidote_data::{DatasetBuilder, Schema};
///
/// # fn main() -> Result<(), antidote_data::DataError> {
/// let mut b = DatasetBuilder::new(Schema::real(2, 2));
/// b.push_row(&[0.5, 1.0], 0)?;
/// b.push_row(&[1.5, -1.0], 1)?;
/// let ds = b.finish();
/// assert_eq!(ds.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<ClassId>,
}

impl DatasetBuilder {
    /// Creates an empty builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .features()
            .iter()
            .map(|f| match f.kind {
                FeatureKind::Bool => Column::Bool(Vec::new()),
                FeatureKind::Real => Column::Real(Vec::new()),
            })
            .collect();
        DatasetBuilder {
            schema,
            columns,
            labels: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// * [`DataError::ArityMismatch`] — wrong number of values;
    /// * [`DataError::LabelOutOfRange`] — label ≥ number of classes;
    /// * [`DataError::NonFiniteValue`] — NaN/∞ in a real column;
    /// * [`DataError::NotBoolean`] — value other than 0/1 in a bool column;
    /// * [`DataError::TooManyRows`] — more than `u32::MAX` rows.
    pub fn push_row(&mut self, values: &[f64], label: ClassId) -> Result<(), DataError> {
        let row = self.labels.len();
        if values.len() != self.schema.n_features() {
            return Err(DataError::ArityMismatch {
                row,
                got: values.len(),
                expected: self.schema.n_features(),
            });
        }
        if (label as usize) >= self.schema.n_classes() {
            return Err(DataError::LabelOutOfRange {
                row,
                label,
                n_classes: self.schema.n_classes(),
            });
        }
        if row >= u32::MAX as usize {
            return Err(DataError::TooManyRows);
        }
        // Validate all values before mutating any column, so a failed push
        // leaves the builder unchanged.
        for (feature, (&v, col)) in values.iter().zip(&self.columns).enumerate() {
            match col {
                Column::Real(_) if !v.is_finite() => {
                    return Err(DataError::NonFiniteValue { row, feature });
                }
                Column::Bool(_) if v != 0.0 && v != 1.0 => {
                    return Err(DataError::NotBoolean {
                        row,
                        feature,
                        value: v,
                    });
                }
                _ => {}
            }
        }
        for (&v, col) in values.iter().zip(&mut self.columns) {
            match col {
                Column::Bool(c) => c.push(v == 1.0),
                Column::Real(c) => c.push(v),
            }
        }
        self.labels.push(label);
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Finalises the dataset.
    pub fn finish(self) -> Dataset {
        let class_masks = build_class_masks(&self.labels, self.schema.n_classes());
        let feature_order = build_feature_order(&self.columns);
        // Threshold indexes are built lazily on first restriction (see
        // Dataset::le_mask), so loading a dataset for stats/accuracy-style
        // commands pays nothing for them.
        let threshold_index = (0..self.columns.len())
            .map(|_| Arc::new(OnceLock::new()))
            .collect();
        Dataset {
            schema: self.schema,
            columns: self.columns,
            labels: self.labels,
            class_masks,
            feature_order,
            threshold_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2x2() -> Schema {
        Schema::real(2, 2)
    }

    #[test]
    fn build_and_access() {
        let ds = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![1.0, 2.0], 0),
                (vec![3.0, 4.0], 1),
                (vec![5.0, 6.0], 0),
            ],
        )
        .unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.value(1, 0), 3.0);
        assert_eq!(ds.value(2, 1), 6.0);
        assert_eq!(ds.label(1), 1);
        assert_eq!(ds.class_counts(), vec![2, 1]);
        assert_eq!(ds.row_values(0), vec![1.0, 2.0]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        let err = b.push_row(&[1.0], 0).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                got: 1,
                expected: 2,
                ..
            }
        ));
        assert!(b.is_empty(), "failed push must not mutate the builder");
    }

    #[test]
    fn label_out_of_range_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        let err = b.push_row(&[1.0, 2.0], 2).unwrap_err();
        assert!(matches!(
            err,
            DataError::LabelOutOfRange {
                label: 2,
                n_classes: 2,
                ..
            }
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut b = DatasetBuilder::new(schema2x2());
        assert!(matches!(
            b.push_row(&[f64::NAN, 0.0], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 0, .. }
        ));
        assert!(matches!(
            b.push_row(&[0.0, f64::INFINITY], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 1, .. }
        ));
        assert!(matches!(
            b.push_row(&[f64::NEG_INFINITY, 0.0], 0).unwrap_err(),
            DataError::NonFiniteValue { feature: 0, .. }
        ));
        assert_eq!(b.len(), 0);
        // The bulk path rejects identically (it shares the builder).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Dataset::from_rows(schema2x2(), &[(vec![0.0, bad], 0)]),
                Err(DataError::NonFiniteValue { row: 0, feature: 1 })
            ));
        }
        // Extreme-but-finite magnitudes (exponent-form inputs) are fine.
        let ds = Dataset::from_rows(schema2x2(), &[(vec![1e3, -2.5e-2], 0)]).unwrap();
        assert_eq!(ds.value(0, 0), 1000.0);
    }

    #[test]
    fn boolean_column_accepts_only_bits() {
        let mut b = DatasetBuilder::new(Schema::boolean(1, 2));
        b.push_row(&[0.0], 0).unwrap();
        b.push_row(&[1.0], 1).unwrap();
        let err = b.push_row(&[0.5], 0).unwrap_err();
        assert!(matches!(err, DataError::NotBoolean { value, .. } if value == 0.5));
        let ds = b.finish();
        assert_eq!(ds.value(0, 0), 0.0);
        assert_eq!(ds.value(1, 0), 1.0);
        assert_eq!(ds.columns()[0].kind(), FeatureKind::Bool);
    }

    #[test]
    fn failed_push_keeps_columns_aligned() {
        // A row that fails validation on the *second* column must not leave a
        // value behind in the first.
        let schema = Schema::new(
            vec![
                Feature {
                    name: "a".into(),
                    kind: FeatureKind::Real,
                },
                Feature {
                    name: "b".into(),
                    kind: FeatureKind::Bool,
                },
            ],
            vec!["c0".into(), "c1".into()],
        )
        .unwrap();
        let mut b = DatasetBuilder::new(schema);
        assert!(b.push_row(&[1.0, 0.7], 0).is_err());
        b.push_row(&[2.0, 1.0], 1).unwrap();
        let ds = b.finish();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.value(0, 0), 2.0);
        assert_eq!(ds.value(0, 1), 1.0);
    }

    #[test]
    fn schema_helpers() {
        let s = Schema::boolean(3, 2).with_class_names(["one", "seven"]);
        assert_eq!(s.classes(), &["one".to_string(), "seven".to_string()]);
        assert_eq!(s.n_features(), 3);
        assert!(s.features().iter().all(|f| f.kind == FeatureKind::Bool));
        assert!(Schema::new(vec![], vec!["a".into()]).is_err());
    }

    #[test]
    fn select_features_projects_columns() {
        let ds = Dataset::from_rows(
            Schema::real(3, 2),
            &[(vec![1.0, 2.0, 3.0], 0), (vec![4.0, 5.0, 6.0], 1)],
        )
        .unwrap();
        let p = ds.select_features(&[2, 0]);
        assert_eq!(p.n_features(), 2);
        assert_eq!(p.value(0, 0), 3.0);
        assert_eq!(p.value(0, 1), 1.0);
        assert_eq!(p.value(1, 0), 6.0);
        assert_eq!(p.label(1), 1);
        assert_eq!(p.schema().features()[0].name, "x2");
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn select_features_rejects_empty() {
        let ds = Dataset::from_rows(schema2x2(), &[(vec![0.0, 0.0], 0)]).unwrap();
        let _ = ds.select_features(&[]);
    }

    #[test]
    fn class_masks_mirror_labels() {
        let rows: Vec<(Vec<f64>, ClassId)> = (0..70)
            .map(|i| (vec![i as f64, 0.0], (i % 3 == 0) as ClassId))
            .collect();
        let ds = Dataset::from_rows(Schema::real(2, 2), &rows).unwrap();
        for class in 0..2 {
            let mask = ds.class_mask(class);
            assert_eq!(mask.len(), 2, "70 rows pack into 2 words");
            for row in 0..ds.len() {
                let bit = mask[row / 64] >> (row % 64) & 1;
                assert_eq!(bit == 1, ds.label(row as RowId) == class, "row {row}");
            }
        }
        // Masks survive feature projection (labels are unchanged).
        let p = ds.select_features(&[1]);
        assert_eq!(p.class_mask(0), ds.class_mask(0));
    }

    #[test]
    fn le_mask_boundaries_and_sharing() {
        let ds = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![1.0, 0.0], 0),
                (vec![2.0, 0.0], 1),
                (vec![2.0, 0.0], 0),
                (vec![4.0, 0.0], 1),
            ],
        )
        .unwrap();
        // Below / between / at / above the observed values.
        assert_eq!(ds.le_mask(0, 0.5, false), Some(&[][..]));
        assert_eq!(ds.le_mask(0, 1.0, false), Some(&[0b0001u64][..]));
        assert_eq!(ds.le_mask(0, 2.0, false), Some(&[0b0111u64][..]));
        assert_eq!(ds.le_mask(0, 2.0, true), Some(&[0b0001u64][..]));
        assert_eq!(ds.le_mask(0, 3.0, false), Some(&[0b0111u64][..]));
        assert_eq!(ds.le_mask(0, 99.0, false), Some(&[0b1111u64][..]));
        // A projection shares the already-built index (same allocation).
        let p = ds.select_features(&[0]);
        let a = ds.le_mask(0, 2.0, false).unwrap().as_ptr();
        let b = p.le_mask(0, 2.0, false).unwrap().as_ptr();
        assert_eq!(a, b, "projections must share the lazily-built masks");
        // Laziness is observational equality: a clone built before first
        // use answers identically.
        assert_eq!(ds.clone().le_mask(0, 2.0, true), ds.le_mask(0, 2.0, true));
    }

    #[test]
    fn feature_order_is_value_sorted_and_tie_stable() {
        let ds = Dataset::from_rows(
            schema2x2(),
            &[
                (vec![3.0, 1.0], 0),
                (vec![1.0, 1.0], 1),
                (vec![3.0, 0.0], 0),
                (vec![2.0, 1.0], 1),
            ],
        )
        .unwrap();
        // Feature 0: value order 1,2,3,3 — the tied 3s keep row order.
        assert_eq!(ds.feature_order(0), &[1, 3, 0, 2]);
        // Feature 1: 0 first, then the tied 1s in ascending row order.
        assert_eq!(ds.feature_order(1), &[2, 0, 1, 3]);
        // Projection keeps the selected features' orders.
        let p = ds.select_features(&[1]);
        assert_eq!(p.feature_order(0), ds.feature_order(1));
    }

    #[test]
    fn approx_bytes_scales_with_size() {
        let small = Dataset::from_rows(schema2x2(), &[(vec![0.0, 0.0], 0)]).unwrap();
        let rows: Vec<_> = (0..100).map(|i| (vec![i as f64, 0.0], 0)).collect();
        let big = Dataset::from_rows(schema2x2(), &rows).unwrap();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
