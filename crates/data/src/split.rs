//! Train/test splitting.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::RowId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `ds` into `(train, test)` with `test_fraction` of rows (rounded
/// down, at least one row in each side when possible) moved to the test set.
///
/// The split is a seeded uniform shuffle — the paper's "random 80%–20%
/// split" for the UCI datasets (§6.1, footnote 9).
///
/// # Panics
///
/// Panics if `test_fraction` is outside `(0, 1)` or `ds` has fewer than two
/// rows.
pub fn train_test_split(ds: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1), got {test_fraction}"
    );
    assert!(ds.len() >= 2, "need at least two rows to split");
    let mut order: Vec<RowId> = ds.rows().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let n_test = ((ds.len() as f64 * test_fraction) as usize).clamp(1, ds.len() - 1);
    let (test_rows, train_rows) = order.split_at(n_test);
    (take_rows(ds, train_rows), take_rows(ds, test_rows))
}

/// Stratified train/test split: samples `test_fraction` of each class
/// independently, so per-class counts are preserved as exactly as
/// rounding allows.
///
/// Used for the Iris benchmark, where the paper's depth-1 behaviour
/// (footnote 10) hinges on the non-Setosa leaf being an *even* split of
/// the two remaining classes — which only survives a class-balanced split.
///
/// # Panics
///
/// Panics if `test_fraction` is outside `(0, 1)` or `ds` has fewer than
/// two rows.
pub fn stratified_split(ds: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1), got {test_fraction}"
    );
    assert!(ds.len() >= 2, "need at least two rows to split");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_rows: Vec<RowId> = Vec::new();
    let mut test_rows: Vec<RowId> = Vec::new();
    for class in 0..ds.n_classes() as u16 {
        let mut rows: Vec<RowId> = ds.rows().filter(|&r| ds.label(r) == class).collect();
        rows.shuffle(&mut rng);
        let n_test = ((rows.len() as f64 * test_fraction).round() as usize).min(rows.len());
        test_rows.extend(&rows[..n_test]);
        train_rows.extend(&rows[n_test..]);
    }
    train_rows.sort_unstable();
    test_rows.sort_unstable();
    (take_rows(ds, &train_rows), take_rows(ds, &test_rows))
}

/// Builds a new dataset from the given rows of `ds`, in the given order.
pub fn take_rows(ds: &Dataset, rows: &[RowId]) -> Dataset {
    let mut b = DatasetBuilder::new(ds.schema().clone());
    for &r in rows {
        b.push_row(&ds.row_values(r), ds.label(r))
            .expect("source rows are valid");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn split_sizes_and_determinism() {
        let ds = synth::iris_like(0);
        let (train, test) = train_test_split(&ds, 0.2, 42);
        assert_eq!(train.len() + test.len(), 150);
        assert_eq!(test.len(), 30);
        let (train2, test2) = train_test_split(&ds, 0.2, 42);
        assert_eq!(train, train2);
        assert_eq!(test, test2);
        let (_, test3) = train_test_split(&ds, 0.2, 43);
        assert_ne!(test, test3, "different seeds give different splits");
    }

    #[test]
    fn split_partitions_rows() {
        let ds = synth::figure2();
        let (train, test) = train_test_split(&ds, 0.25, 1);
        // Every original feature value appears exactly once across the two
        // sides (figure2 has distinct values).
        let mut values: Vec<f64> = (0..train.len() as RowId)
            .map(|r| train.value(r, 0))
            .chain((0..test.len() as RowId).map(|r| test.value(r, 0)))
            .collect();
        values.sort_by(f64::total_cmp);
        assert_eq!(values.len(), 13);
        let mut orig: Vec<f64> = (0..13u32).map(|r| ds.value(r, 0)).collect();
        orig.sort_by(f64::total_cmp);
        assert_eq!(values, orig);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn bad_fraction_panics() {
        let ds = synth::figure2();
        let _ = train_test_split(&ds, 1.5, 0);
    }

    #[test]
    fn extreme_fraction_keeps_both_sides_nonempty() {
        let ds = synth::figure2();
        let (train, test) = train_test_split(&ds, 0.01, 0);
        assert!(!train.is_empty() && !test.is_empty());
        let (train, test) = train_test_split(&ds, 0.99, 0);
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    fn take_rows_preserves_order_and_content() {
        let ds = synth::figure2();
        let sub = take_rows(&ds, &[5, 0, 12]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.value(0, 0), ds.value(5, 0));
        assert_eq!(sub.value(1, 0), ds.value(0, 0));
        assert_eq!(sub.label(2), ds.label(12));
    }
}
