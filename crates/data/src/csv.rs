//! Minimal CSV I/O for datasets.
//!
//! The evaluation datasets are synthesised (no network access), but a user
//! with the real UCI/MNIST files can load them through this module and run
//! the identical pipeline. The format is deliberately simple: a header row
//! of feature names with a final `label` column; fields are unquoted and
//! comma-separated; labels are class names (strings) enumerated in order of
//! first appearance.

use crate::dataset::{Dataset, DatasetBuilder, Feature, FeatureKind, Schema};
use crate::error::DataError;
use crate::ClassId;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Loads a dataset from a CSV reader.
///
/// Feature kinds are inferred per column: a column whose values are all `0`
/// or `1` becomes [`FeatureKind::Bool`], anything else [`FeatureKind::Real`].
///
/// # Errors
///
/// Returns [`DataError::Csv`] on malformed input and [`DataError::Io`] on
/// read failures.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, DataError> {
    let mut lines = BufReader::new(reader).lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(DataError::Csv {
                line: 1,
                message: "empty input".into(),
            })
        }
    };
    let mut names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.len() < 2 {
        return Err(DataError::Csv {
            line: 1,
            message: "need at least one feature column and a label column".into(),
        });
    }
    let label_col = names.pop().expect("checked non-empty");
    if label_col != "label" {
        return Err(DataError::Csv {
            line: 1,
            message: format!("last column must be named 'label', got '{label_col}'"),
        });
    }
    // Header names must be non-empty and unique: an empty name cannot be
    // referred to in any error message or output, and a duplicate makes
    // `--feature <name>`-style lookups (and re-written CSVs) ambiguous.
    for (i, name) in names.iter().enumerate() {
        if name.is_empty() {
            return Err(DataError::Csv {
                line: 1,
                message: format!("header field {} is empty", i + 1),
            });
        }
        if names[..i].contains(name) {
            return Err(DataError::Csv {
                line: 1,
                message: format!("duplicate header field '{name}'"),
            });
        }
    }

    let n_features = names.len();
    let mut rows: Vec<(Vec<f64>, String)> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let lineno = lineno + 2; // 1-based, after header
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != n_features + 1 {
            return Err(DataError::Csv {
                line: lineno,
                message: format!("expected {} fields, got {}", n_features + 1, fields.len()),
            });
        }
        let mut values = Vec::with_capacity(n_features);
        for (i, field) in fields[..n_features].iter().enumerate() {
            let v: f64 = field.parse().map_err(|_| DataError::Csv {
                line: lineno,
                message: format!("field {i} ('{field}') is not a number"),
            })?;
            // `parse::<f64>` happily accepts "NaN"/"inf"/"-inf"; letting
            // them through would poison gini thresholds and predicate
            // comparisons downstream (NaN breaks total orders silently),
            // so reject them here with the offending line, not later with
            // a row index the user cannot map back to the file.
            if !v.is_finite() {
                return Err(DataError::Csv {
                    line: lineno,
                    message: format!("field {i} ('{field}') is not finite"),
                });
            }
            values.push(v);
        }
        rows.push((values, fields[n_features].to_string()));
    }
    if rows.is_empty() {
        return Err(DataError::Csv {
            line: 2,
            message: "no data rows".into(),
        });
    }

    // Enumerate classes by first appearance.
    let mut classes: Vec<String> = Vec::new();
    let mut labels: Vec<ClassId> = Vec::with_capacity(rows.len());
    for (_, name) in &rows {
        let id = match classes.iter().position(|c| c == name) {
            Some(i) => i,
            None => {
                classes.push(name.clone());
                classes.len() - 1
            }
        };
        labels.push(id as ClassId);
    }

    // Infer column kinds.
    let kinds: Vec<FeatureKind> = (0..n_features)
        .map(|f| {
            if rows.iter().all(|(v, _)| v[f] == 0.0 || v[f] == 1.0) {
                FeatureKind::Bool
            } else {
                FeatureKind::Real
            }
        })
        .collect();
    let features = names
        .into_iter()
        .zip(kinds)
        .map(|(name, kind)| Feature { name, kind })
        .collect();
    let schema = Schema::new(features, classes)?;
    let mut b = DatasetBuilder::new(schema);
    for ((values, _), label) in rows.iter().zip(labels) {
        b.push_row(values, label)?;
    }
    Ok(b.finish())
}

/// Writes `ds` as CSV.
///
/// # Errors
///
/// Returns [`DataError::Io`] on write failures.
pub fn write_csv<W: Write>(ds: &Dataset, mut writer: W) -> Result<(), DataError> {
    let header: Vec<&str> = ds
        .schema()
        .features()
        .iter()
        .map(|f| f.name.as_str())
        .chain(["label"])
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for r in ds.rows() {
        let mut fields: Vec<String> = (0..ds.n_features())
            .map(|f| format_value(ds.value(r, f)))
            .collect();
        fields.push(ds.schema().classes()[ds.label(r) as usize].clone());
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Loads a dataset from a CSV file on disk.
///
/// # Errors
///
/// See [`read_csv`].
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Dataset, DataError> {
    read_csv(std::fs::File::open(path)?)
}

/// Saves a dataset to a CSV file on disk.
///
/// # Errors
///
/// See [`write_csv`].
pub fn save_csv<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<(), DataError> {
    write_csv(ds, std::fs::File::create(path)?)
}

/// Round-trip-safe float formatting (integers print without a fraction).
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn round_trip_real() {
        let ds = synth::figure2();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.n_classes(), 2);
        // Class ids are re-enumerated by first appearance (figure2's first
        // row is black), but class *names* round-trip exactly.
        for r in 0..13u32 {
            assert_eq!(back.value(r, 0), ds.value(r, 0));
            assert_eq!(
                back.schema().classes()[back.label(r) as usize],
                ds.schema().classes()[ds.label(r) as usize]
            );
        }
    }

    #[test]
    fn round_trip_binary_infers_bool() {
        let ds = synth::mnist17_like(synth::MnistVariant::Binary, 6, 0);
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 6);
        // Binary pixels that actually vary are inferred as Bool; constant-0
        // columns are also all-0/1 and therefore Bool.
        assert!(back
            .schema()
            .features()
            .iter()
            .all(|f| f.kind == FeatureKind::Bool));
    }

    #[test]
    fn round_trip_fractional_values() {
        let ds = synth::iris_like(0);
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        for r in 0..ds.len() as u32 {
            for f in 0..4 {
                assert!((back.value(r, f) - ds.value(r, f)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            read_csv("".as_bytes()),
            Err(DataError::Csv { line: 1, .. })
        ));
        assert!(read_csv("label\n".as_bytes()).is_err());
        assert!(read_csv("x0,wrong\n1,a\n".as_bytes()).is_err());
        // Wrong field count.
        let err = read_csv("x0,x1,label\n1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
        // Non-numeric feature.
        let err = read_csv("x0,label\nfoo,a\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
        // Header only, no rows.
        assert!(read_csv("x0,label\n".as_bytes()).is_err());
        // Duplicate header field names are ambiguous.
        let err = read_csv("x0,x0,label\n1,2,a\n".as_bytes()).unwrap_err();
        assert!(
            matches!(&err, DataError::Csv { line: 1, message } if message.contains("duplicate")),
            "duplicate header must fail at line 1, got {err:?}"
        );
        // Empty header field names (including whitespace-only) are rejected.
        for src in [
            "x0,,label\n1,2,a\n",
            ",label\n1,a\n",
            "x0,  ,label\n1,2,a\n",
        ] {
            let err = read_csv(src.as_bytes()).unwrap_err();
            assert!(
                matches!(&err, DataError::Csv { line: 1, message } if message.contains("empty")),
                "'{}' must fail with an empty-header error, got {err:?}",
                src.lines().next().unwrap()
            );
        }
        // A single feature named 'label' is legal (only the *last* column
        // is the label); the uniqueness check runs on features only.
        assert!(read_csv("label,label\n1,a\n".as_bytes()).is_ok());
    }

    #[test]
    fn non_finite_values_rejected_with_line_numbers() {
        // Rust's f64 parser accepts many spellings of the non-finite
        // values; every one must be rejected as a typed CSV error carrying
        // the 1-based file line, never silently admitted as a row.
        for bad in ["NaN", "nan", "inf", "+inf", "-inf", "infinity", "-Infinity"] {
            let src = format!("x0,x1,label\n1,2,a\n{bad},3,b\n");
            let err = read_csv(src.as_bytes()).unwrap_err();
            assert!(
                matches!(err, DataError::Csv { line: 3, .. }),
                "'{bad}' must be rejected at line 3, got {err:?}"
            );
        }
        // …and in any column, not just the first.
        let err = read_csv("x0,x1,label\n1,-inf,a\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
    }

    #[test]
    fn exponent_form_finite_values_accepted() {
        // Finite scientific notation must keep parsing: the non-finite
        // guard is about NaN/∞, not about exotic-but-finite spellings.
        let src = "x0,x1,label\n1e3,-2.5E-2,a\n0.5e0,3,b\n";
        let ds = read_csv(src.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.value(0, 0), 1000.0);
        assert!((ds.value(0, 1) + 0.025).abs() < 1e-15);
        assert_eq!(ds.value(1, 0), 0.5);
    }

    #[test]
    fn blank_lines_skipped_and_classes_in_first_appearance_order() {
        let src = "x0,label\n1,seven\n\n2,one\n3,seven\n";
        let ds = read_csv(src.as_bytes()).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(
            ds.schema().classes(),
            &["seven".to_string(), "one".to_string()]
        );
        assert_eq!(ds.label(0), 0);
        assert_eq!(ds.label(1), 1);
    }
}
