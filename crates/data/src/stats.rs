//! Dataset summary statistics (Table 1's "detailed metrics" columns).

use crate::dataset::{Column, Dataset};
use std::fmt;

/// Per-feature summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStats {
    /// Feature name from the schema.
    pub name: String,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Number of distinct values (drives the candidate-predicate count for
    /// real features, §5.1).
    pub distinct: usize,
}

/// Whole-dataset summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of feature columns.
    pub features: usize,
    /// Number of boolean feature columns.
    pub boolean_features: usize,
    /// Per-class row counts.
    pub class_counts: Vec<u32>,
    /// Class names.
    pub class_names: Vec<String>,
    /// Per-feature summaries.
    pub per_feature: Vec<FeatureStats>,
    /// Total distinct (feature, threshold) split candidates a real-valued
    /// learner would consider on the full set: Σ_f (distinct_f − 1).
    pub candidate_predicates: usize,
}

impl DatasetStats {
    /// Computes statistics for `ds`.
    pub fn compute(ds: &Dataset) -> Self {
        let mut per_feature = Vec::with_capacity(ds.n_features());
        let mut boolean_features = 0;
        let mut candidate_predicates = 0;
        for (f, col) in ds.columns().iter().enumerate() {
            if matches!(col, Column::Bool(_)) {
                boolean_features += 1;
            }
            let mut values: Vec<f64> = ds.rows().map(|r| ds.value(r, f)).collect();
            values.sort_by(f64::total_cmp);
            let distinct = count_distinct(&values);
            candidate_predicates += distinct.saturating_sub(1);
            let (min, max) = match (values.first(), values.last()) {
                (Some(&a), Some(&b)) => (a, b),
                _ => (f64::NAN, f64::NAN),
            };
            let mean = if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            per_feature.push(FeatureStats {
                name: ds.schema().features()[f].name.clone(),
                min,
                max,
                mean,
                distinct,
            });
        }
        DatasetStats {
            rows: ds.len(),
            features: ds.n_features(),
            boolean_features,
            class_counts: ds.class_counts(),
            class_names: ds.schema().classes().to_vec(),
            per_feature,
            candidate_predicates,
        }
    }
}

fn count_distinct(sorted: &[f64]) -> usize {
    let mut n = 0;
    let mut last = f64::NAN;
    for &v in sorted {
        if n == 0 || v != last {
            n += 1;
            last = v;
        }
    }
    n
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} rows x {} features ({} boolean), {} classes, {} candidate predicates",
            self.rows,
            self.features,
            self.boolean_features,
            self.class_counts.len(),
            self.candidate_predicates
        )?;
        for (name, count) in self.class_names.iter().zip(&self.class_counts) {
            writeln!(f, "  class {name}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn figure2_stats() {
        let s = DatasetStats::compute(&synth::figure2());
        assert_eq!(s.rows, 13);
        assert_eq!(s.features, 1);
        assert_eq!(s.boolean_features, 0);
        assert_eq!(s.class_counts, vec![7, 6]);
        assert_eq!(s.per_feature[0].distinct, 13);
        assert_eq!(s.per_feature[0].min, 0.0);
        assert_eq!(s.per_feature[0].max, 14.0);
        // 13 distinct values → 12 adjacent-pair thresholds (Example 5.1).
        assert_eq!(s.candidate_predicates, 12);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn boolean_features_counted() {
        let ds = synth::mnist17_like(synth::MnistVariant::Binary, 10, 0);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.boolean_features, 784);
        // A boolean feature has at most 2 distinct values → ≤1 candidate.
        assert!(s.candidate_predicates <= 784);
    }

    #[test]
    fn distinct_counting() {
        assert_eq!(count_distinct(&[]), 0);
        assert_eq!(count_distinct(&[1.0]), 1);
        assert_eq!(count_distinct(&[1.0, 1.0, 2.0, 3.0, 3.0]), 3);
    }
}
