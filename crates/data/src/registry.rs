//! Long-lived dataset registry for the certification service
//! (DESIGN.md §12).
//!
//! A one-shot CLI run loads a dataset, lazily builds its indexes, and
//! drops everything on exit. The service inverts that: a
//! [`DatasetRegistry`] maps string handles to epoch-stamped
//! [`Arc<Dataset>`]s whose class masks, per-feature orders, and `le_mask`
//! threshold indexes are built **once** at load time
//! ([`Dataset::warm_indexes`]) and shared by every request that clones
//! the `Arc`.
//!
//! Epoch safety is structural: a reader resolves a handle to an `Arc`
//! under the registry lock and then works entirely against that
//! snapshot, so a concurrent [`DatasetRegistry::apply_delta`] — which
//! swaps in a *new* dataset at epoch + 1 and never mutates the old one
//! ([`Dataset::apply`] is persistent) — can never produce a torn read.
//! The worst a racing reader sees is the previous epoch, consistently;
//! pairing that stale snapshot with new-epoch certification state is
//! rejected downstream by the epoch-stamped caches (`EpochMismatch`).

use crate::dataset::{Dataset, DatasetDelta, DeltaSummary};
use crate::error::DataError;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Handle → epoch-stamped shared dataset map (see the module docs).
///
/// All methods take `&self`; the registry is `Sync` and meant to be
/// shared across request-serving threads.
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    map: RwLock<BTreeMap<String, Arc<Dataset>>>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> DatasetRegistry {
        DatasetRegistry::default()
    }

    /// Loads `ds` under `handle` (replacing any previous entry), warming
    /// every lazily-built index first so requests served from the shared
    /// `Arc` never pay a first-touch cost. Returns the shared handle to
    /// the stored dataset.
    pub fn load(&self, handle: &str, ds: Dataset) -> Arc<Dataset> {
        ds.warm_indexes();
        let ds = Arc::new(ds);
        self.map
            .write()
            .expect("registry lock poisoned")
            .insert(handle.to_string(), Arc::clone(&ds));
        ds
    }

    /// The dataset currently registered under `handle`, if any. The
    /// returned `Arc` is a consistent snapshot: later deltas swap the
    /// registry entry but never mutate this value.
    pub fn get(&self, handle: &str) -> Option<Arc<Dataset>> {
        self.map
            .read()
            .expect("registry lock poisoned")
            .get(handle)
            .cloned()
    }

    /// Removes `handle`, returning whether it was present. In-flight
    /// holders of the evicted `Arc` keep a valid dataset.
    pub fn evict(&self, handle: &str) -> bool {
        self.map
            .write()
            .expect("registry lock poisoned")
            .remove(handle)
            .is_some()
    }

    /// The registered handles, ascending.
    pub fn handles(&self) -> Vec<String> {
        self.map
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Applies one delta to the dataset under `handle`, atomically
    /// swapping in the epoch + 1 successor. Returns the new shared
    /// dataset and the normalized summary (what certificate transfer
    /// reasons about).
    ///
    /// # Errors
    ///
    /// [`DataError::UnknownHandle`] when nothing is loaded under
    /// `handle`; otherwise whatever [`Dataset::apply_summarized`] rejects
    /// (dead or out-of-range rows, undeclared labels, arity mismatches),
    /// in which case the registry entry is left untouched.
    pub fn apply_delta(
        &self,
        handle: &str,
        delta: &DatasetDelta,
    ) -> Result<(Arc<Dataset>, DeltaSummary), DataError> {
        let (ds, mut summaries) = self.apply_delta_many(handle, std::slice::from_ref(delta))?;
        Ok((ds, summaries.pop().expect("one delta yields one summary")))
    }

    /// Applies a *chain* of deltas to the dataset under `handle` — delta
    /// `i + 1` addresses the row-id space produced by delta `i` — and
    /// atomically swaps in the final dataset, `deltas.len()` epochs
    /// ahead. Returns the new shared dataset plus one normalized
    /// [`DeltaSummary`] per epoch crossed, in order, so callers can run a
    /// single batched certificate transfer across the whole span.
    ///
    /// The swap is all-or-nothing: if any delta in the chain is invalid,
    /// the registry entry is left at its current epoch.
    ///
    /// # Errors
    ///
    /// [`DataError::UnknownHandle`] when nothing is loaded under
    /// `handle`, [`DataError::InvalidDelta`] (and friends) from the first
    /// delta that fails to apply.
    pub fn apply_delta_many(
        &self,
        handle: &str,
        deltas: &[DatasetDelta],
    ) -> Result<(Arc<Dataset>, Vec<DeltaSummary>), DataError> {
        // The write lock spans the whole chain so two concurrent delta
        // requests serialize instead of both building successors of the
        // same epoch and losing one.
        let mut map = self.map.write().expect("registry lock poisoned");
        let current = map
            .get(handle)
            .ok_or_else(|| DataError::UnknownHandle {
                handle: handle.to_string(),
            })?
            .clone();
        let mut ds = (*current).clone();
        let mut summaries = Vec::with_capacity(deltas.len());
        for delta in deltas {
            let (next, summary) = ds.apply_summarized(delta)?;
            ds = next;
            summaries.push(summary);
        }
        let ds = Arc::new(ds);
        map.insert(handle.to_string(), Arc::clone(&ds));
        Ok((ds, summaries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn load_get_evict_roundtrip() {
        let reg = DatasetRegistry::new();
        assert!(reg.get("fig2").is_none());
        let stored = reg.load("fig2", synth::figure2());
        assert_eq!(stored.epoch(), 0);
        let got = reg.get("fig2").expect("loaded");
        assert!(Arc::ptr_eq(&stored, &got), "get returns the shared Arc");
        assert_eq!(reg.handles(), vec!["fig2".to_string()]);
        assert!(reg.evict("fig2"));
        assert!(!reg.evict("fig2"), "second evict is a no-op");
        assert!(reg.get("fig2").is_none());
        // The evicted Arc is still a live dataset.
        assert_eq!(got.len(), 13);
    }

    #[test]
    fn load_warms_the_threshold_indexes() {
        let reg = DatasetRegistry::new();
        let ds = reg.load("fig2", synth::figure2());
        // warm_indexes already forced every per-feature OnceLock, so this
        // lookup is a pure read; it must agree with a cold dataset's.
        let cold = synth::figure2();
        for f in 0..ds.n_features() {
            assert_eq!(ds.le_mask(f, 0.5, false), cold.le_mask(f, 0.5, false));
        }
    }

    #[test]
    fn apply_delta_swaps_epochs_and_leaves_snapshots_alone() {
        let reg = DatasetRegistry::new();
        let before = reg.load("fig2", synth::figure2());
        let mut delta = DatasetDelta::new();
        delta.remove(0).remove(1);
        let (after, summary) = reg.apply_delta("fig2", &delta).unwrap();
        assert_eq!(after.epoch(), 1);
        assert_eq!(summary.removed, vec![0, 1]);
        assert!(summary.pure_removal());
        // The old snapshot is untouched; the registry serves the new one.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.len(), 13);
        assert_eq!(after.len(), 11);
        assert_eq!(reg.get("fig2").unwrap().epoch(), 1);
    }

    #[test]
    fn apply_delta_many_is_one_swap_across_the_chain() {
        let reg = DatasetRegistry::new();
        reg.load("fig2", synth::figure2());
        let mut d0 = DatasetDelta::new();
        d0.remove(0);
        let mut d1 = DatasetDelta::new();
        d1.remove(1).remove(2);
        let (ds, summaries) = reg.apply_delta_many("fig2", &[d0, d1]).unwrap();
        assert_eq!(ds.epoch(), 2);
        assert_eq!(ds.len(), 10);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].removed, vec![0]);
        assert_eq!(summaries[1].removed, vec![1, 2]);
    }

    #[test]
    fn invalid_chain_leaves_the_entry_untouched() {
        let reg = DatasetRegistry::new();
        reg.load("fig2", synth::figure2());
        let mut ok = DatasetDelta::new();
        ok.remove(0);
        let mut bad = DatasetDelta::new();
        bad.remove(10_000);
        let err = reg.apply_delta_many("fig2", &[ok, bad]).unwrap_err();
        assert!(matches!(err, DataError::InvalidDelta { .. }));
        let ds = reg.get("fig2").unwrap();
        assert_eq!(ds.epoch(), 0, "failed chains must not half-apply");
        assert_eq!(ds.len(), 13);
    }

    #[test]
    fn unknown_handle_is_a_clean_error() {
        let reg = DatasetRegistry::new();
        let err = reg.apply_delta("nope", &DatasetDelta::new()).unwrap_err();
        assert!(matches!(err, DataError::UnknownHandle { .. }));
        assert!(err.to_string().contains("nope"));
    }
}
