//! A frontier-lifetime recycling arena for `u64` word buffers.
//!
//! The abstract learner's per-iteration scratch — `prune_subsumed`'s
//! per-row containment bitsets and its live-word accumulator — used to
//! hit the global allocator on every frontier iteration (tens of
//! kilobytes per pass at the peak frontier sizes the benchmarks reach).
//! A [`WordArena`] keeps those buffers alive across iterations: `alloc`
//! hands out a zeroed buffer (recycling a returned one when it fits),
//! `recycle` returns it, and `reset` marks a run boundary.
//!
//! # Lifecycle and the interner escape hatch
//!
//! One arena lives per engine worker thread (a thread-local in the
//! learner) and is `reset` at the start of every `run_abstract` call —
//! "frontier lifetime". The arena only ever owns *scratch* buffers:
//! any word vector that survives the run — a sealed
//! `SubsetRepr` payload, interned or not — is moved into its own
//! `Arc` allocation by `Subset::seal` and therefore outlives every
//! reset trivially (the hash-consing `Arc` escape hatch; see
//! DESIGN.md §10.2). Nothing handed out by the arena is ever reachable
//! from a `Subset`.
//!
//! Accounting: [`WordArena::peak_bytes`] is the high-water mark of bytes
//! held (free and handed out) since construction, and
//! [`WordArena::resets`] counts run boundaries; the learner reports both
//! through the engine metrics (`arena_bytes` / `arena_resets`).

/// A recycling pool of zeroed `u64` buffers with byte-level accounting.
#[derive(Debug, Default)]
pub struct WordArena {
    /// Returned buffers, available for reuse.
    free: Vec<Vec<u64>>,
    /// Bytes pooled and awaiting reuse (Σ capacity over `free`).
    free_bytes: usize,
    /// Bytes handed out by [`WordArena::alloc`] and not yet recycled —
    /// charged at allocation time, so buffers still outstanding at a
    /// [`WordArena::reset`] have already counted toward the watermark.
    live_bytes: usize,
    /// High-water mark of `free_bytes + live_bytes`.
    peak_bytes: usize,
    /// Run boundaries seen (one `reset` per learner run).
    resets: u64,
}

impl WordArena {
    /// An empty arena.
    pub fn new() -> Self {
        WordArena::default()
    }

    /// A zeroed buffer of exactly `len` words — recycled when a returned
    /// buffer has enough capacity, freshly allocated otherwise.
    pub fn alloc(&mut self, len: usize) -> Vec<u64> {
        match self.free.iter().position(|b| b.capacity() >= len) {
            Some(i) => {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0);
                // Moves from the pool to outstanding: total held is
                // unchanged, so recycling charges nothing new.
                let bytes = buf.capacity() * std::mem::size_of::<u64>();
                self.free_bytes = self.free_bytes.saturating_sub(bytes);
                self.live_bytes += bytes;
                buf
            }
            None => {
                let buf = vec![0u64; len];
                self.live_bytes += buf.capacity() * std::mem::size_of::<u64>();
                self.peak_bytes = self.peak_bytes.max(self.free_bytes + self.live_bytes);
                buf
            }
        }
    }

    /// Returns a buffer to the pool for reuse by a later [`alloc`].
    /// Capacity gained while the buffer was out (growth past the size
    /// charged at alloc time, or a buffer the arena never handed out)
    /// enters the accounting here, so the watermark is re-checked on
    /// every recycle as well as every alloc.
    ///
    /// [`alloc`]: WordArena::alloc
    pub fn recycle(&mut self, buf: Vec<u64>) {
        let bytes = buf.capacity() * std::mem::size_of::<u64>();
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
        self.free_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.free_bytes + self.live_bytes);
        self.free.push(buf);
    }

    /// Marks a run boundary: bumps the reset counter, drops pooled
    /// buffers beyond a small keep-set so one outlier run cannot pin
    /// memory forever (recycled capacity within the keep-set survives —
    /// that is the point of the arena), and writes off any buffers still
    /// outstanding — they were charged at allocation time and have
    /// already counted toward [`WordArena::peak_bytes`], but they will
    /// never come back across a run boundary.
    pub fn reset(&mut self) {
        self.resets += 1;
        const KEEP: usize = 4;
        while self.free.len() > KEEP {
            let dropped = self.free.swap_remove(0);
            self.free_bytes = self
                .free_bytes
                .saturating_sub(dropped.capacity() * std::mem::size_of::<u64>());
        }
        self.live_bytes = 0;
    }

    /// High-water mark of bytes held by the arena since construction.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of run boundaries ([`reset`](WordArena::reset) calls) seen.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_recycles_and_zeroes() {
        let mut arena = WordArena::new();
        let mut a = arena.alloc(10);
        assert_eq!(a, vec![0u64; 10]);
        a.iter_mut().for_each(|w| *w = !0);
        let cap = a.capacity();
        arena.recycle(a);
        // Same capacity comes back, zeroed, with no new bytes charged.
        let peak = arena.peak_bytes();
        let b = arena.alloc(8);
        assert_eq!(b, vec![0u64; 8]);
        assert_eq!(b.capacity(), cap);
        assert_eq!(arena.peak_bytes(), peak, "recycling charges nothing");
        // An oversized request allocates fresh and raises the peak.
        let c = arena.alloc(cap + 1);
        assert_eq!(c.len(), cap + 1);
        assert!(arena.peak_bytes() > peak);
    }

    #[test]
    fn reset_counts_and_bounds_the_pool() {
        let mut arena = WordArena::new();
        assert_eq!(arena.resets(), 0);
        for _ in 0..8 {
            let b = arena.alloc(4);
            arena.recycle(b);
        }
        // Recycling reuses one buffer, so the pool never exceeds 1 here;
        // fill it explicitly to exercise the keep-set bound.
        for _ in 0..8 {
            arena.recycle(vec![0u64; 4]);
        }
        arena.reset();
        assert_eq!(arena.resets(), 1);
        assert!(arena.free.len() <= 4, "reset bounds the pooled buffers");
        arena.reset();
        assert_eq!(arena.resets(), 2);
    }

    #[test]
    fn peak_counts_growth_while_out_and_buffers_live_at_reset() {
        // Regression: the watermark used to be updated only when a fresh
        // buffer was allocated, so capacity gained while a buffer was out
        // (growth, or a buffer the arena never handed out) silently
        // vanished from the peak. It is now re-checked on recycle too.
        let mut arena = WordArena::new();
        let mut a = arena.alloc(4); // 32 bytes charged at alloc time
        assert_eq!(arena.peak_bytes(), 32);
        a.resize(64, 0); // grows while out: capacity >= 512 bytes
        let grown = a.capacity() * std::mem::size_of::<u64>();
        arena.recycle(a);
        assert!(
            arena.peak_bytes() >= grown,
            "growth while out must count toward the watermark ({} < {grown})",
            arena.peak_bytes()
        );
        // A buffer still outstanding at reset was charged at alloc time,
        // so the watermark already covers it; the reset writes it off
        // without disturbing the recorded peak.
        let mut arena = WordArena::new();
        let held = arena.alloc(8); // 64 bytes outstanding
        assert_eq!(arena.peak_bytes(), 64);
        arena.reset();
        assert_eq!(
            arena.peak_bytes(),
            64,
            "buffers live at reset count toward the watermark"
        );
        drop(held);
        // After the boundary the write-off keeps later accounting sane:
        // the next run's scratch is not stacked on the written-off bytes.
        let b = arena.alloc(8);
        assert_eq!(arena.peak_bytes(), 64, "new run restarts from zero live");
        drop(b);
    }
}
