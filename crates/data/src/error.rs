//! Error type for dataset construction and I/O.

use std::fmt;

/// Errors produced while building, loading, or validating datasets.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// A row had a different number of features than the schema declares.
    ArityMismatch {
        /// Row index (in insertion order) of the offending row.
        row: usize,
        /// Number of values the row supplied.
        got: usize,
        /// Number of features the schema declares.
        expected: usize,
    },
    /// A label was out of range for the declared number of classes.
    LabelOutOfRange {
        /// Row index of the offending row.
        row: usize,
        /// The label supplied.
        label: u16,
        /// Number of classes the schema declares.
        n_classes: usize,
    },
    /// A real-valued feature was NaN or infinite.
    NonFiniteValue {
        /// Row index of the offending value.
        row: usize,
        /// Feature (column) index of the offending value.
        feature: usize,
    },
    /// A boolean column received a value other than 0 or 1.
    NotBoolean {
        /// Row index of the offending value.
        row: usize,
        /// Feature (column) index of the offending value.
        feature: usize,
        /// The offending value.
        value: f64,
    },
    /// The dataset would exceed `u32::MAX` rows.
    TooManyRows,
    /// The schema declares no features or no classes.
    EmptySchema,
    /// A [`crate::DatasetDelta`] referenced a row it cannot legally touch
    /// at the epoch it targets (dead, out of range, or both removed and
    /// flipped within one delta).
    InvalidDelta {
        /// The offending row id.
        row: u32,
        /// What the delta tried to do with it.
        reason: &'static str,
    },
    /// A [`crate::registry::DatasetRegistry`] operation named a handle
    /// that is not loaded.
    UnknownHandle {
        /// The handle the caller asked for.
        handle: String,
    },
    /// A CSV parse failure.
    Csv {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch { row, got, expected } => {
                write!(f, "row {row} has {got} features, schema expects {expected}")
            }
            DataError::LabelOutOfRange {
                row,
                label,
                n_classes,
            } => {
                write!(
                    f,
                    "row {row} has label {label}, schema declares {n_classes} classes"
                )
            }
            DataError::NonFiniteValue { row, feature } => {
                write!(f, "row {row}, feature {feature}: value is not finite")
            }
            DataError::NotBoolean {
                row,
                feature,
                value,
            } => {
                write!(
                    f,
                    "row {row}, feature {feature}: {value} is not a boolean (0 or 1)"
                )
            }
            DataError::TooManyRows => write!(f, "dataset exceeds u32::MAX rows"),
            DataError::EmptySchema => {
                write!(f, "schema must declare at least one feature and one class")
            }
            DataError::InvalidDelta { row, reason } => {
                write!(f, "invalid delta: row {row}: {reason}")
            }
            DataError::UnknownHandle { handle } => {
                write!(f, "no dataset loaded under handle '{handle}'")
            }
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_style() {
        let errs: Vec<DataError> = vec![
            DataError::ArityMismatch {
                row: 3,
                got: 2,
                expected: 4,
            },
            DataError::LabelOutOfRange {
                row: 1,
                label: 9,
                n_classes: 3,
            },
            DataError::NonFiniteValue { row: 0, feature: 2 },
            DataError::NotBoolean {
                row: 0,
                feature: 1,
                value: 0.5,
            },
            DataError::TooManyRows,
            DataError::EmptySchema,
            DataError::Csv {
                line: 7,
                message: "bad field".into(),
            },
            DataError::InvalidDelta {
                row: 4,
                reason: "remove targets a row that is not live",
            },
            DataError::UnknownHandle {
                handle: "prod".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                !s.ends_with('.'),
                "error messages should not end with punctuation: {s}"
            );
        }
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = DataError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}
