//! Deterministic synthetic benchmark datasets.
//!
//! The paper evaluates on five datasets (§6.1, Table 1): UCI Iris,
//! Mammographic Masses, Wisconsin Diagnostic Breast Cancer, and two variants
//! of MNIST-1-7. This environment has no network access, so each generator
//! here synthesises a stand-in with the same size, dimensionality, class
//! structure, and — where it matters to the prover — the same geometric
//! character (separability, feature cardinality, sparse high-information
//! pixels). See `DESIGN.md` §4 for the substitution rationale.
//!
//! All generators are deterministic in their seed.

use crate::dataset::{Dataset, DatasetBuilder, Schema};
use crate::ClassId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`, which is outside the approved crate set).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
fn normal_ms(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    mean + sd * normal(rng)
}

/// The paper's Figure 2 running example: 13 one-feature points.
///
/// Feature values `{0,1,2,3,4,7,8,9,10,11,12,13,14}`; class 0 = *white*,
/// class 1 = *black*. Black points sit at 0, 4 and at every value > 10, so
/// the best depth-1 split is `x ≤ 10` with `cprob(T↓φ) = ⟨7/9, 2/9⟩` and
/// `cprob(T↓¬φ) = ⟨0, 1⟩`, exactly as in Examples 3.4–3.5.
pub fn figure2() -> Dataset {
    let schema = Schema::real(1, 2).with_class_names(["white", "black"]);
    let rows: Vec<(Vec<f64>, ClassId)> = [
        (0.0, 1),
        (1.0, 0),
        (2.0, 0),
        (3.0, 0),
        (4.0, 1),
        (7.0, 0),
        (8.0, 0),
        (9.0, 0),
        (10.0, 0),
        (11.0, 1),
        (12.0, 1),
        (13.0, 1),
        (14.0, 1),
    ]
    .iter()
    .map(|&(x, c)| (vec![x], c))
    .collect();
    Dataset::from_rows(schema, &rows).expect("figure2 data is statically valid")
}

/// Parameters for [`gaussian_blobs`].
#[derive(Debug, Clone)]
pub struct BlobSpec {
    /// Per-class cluster means; all must share one dimension.
    pub means: Vec<Vec<f64>>,
    /// Per-class, per-feature standard deviations (same shape as `means`).
    pub stds: Vec<Vec<f64>>,
    /// Rows generated per class.
    pub per_class: usize,
    /// Optional quantisation step; values are rounded to multiples of it
    /// (e.g. `0.1` mimics the fixed decimal resolution of UCI data, which
    /// produces the repeated feature values real datasets have).
    pub quantum: Option<f64>,
}

/// Generic class-conditional Gaussian generator, the workhorse behind the
/// UCI-like benchmarks and handy for tests and examples.
///
/// Rows are interleaved across classes (class of row `i` is
/// `i % n_classes`), so prefix subsets stay class-balanced.
///
/// # Panics
///
/// Panics if `means`/`stds` shapes disagree or are empty.
pub fn gaussian_blobs(spec: &BlobSpec, seed: u64) -> Dataset {
    let k = spec.means.len();
    assert!(
        k > 0 && spec.stds.len() == k,
        "means/stds class count mismatch"
    );
    let d = spec.means[0].len();
    assert!(d > 0, "blobs need at least one feature");
    for (m, s) in spec.means.iter().zip(&spec.stds) {
        assert!(
            m.len() == d && s.len() == d,
            "means/stds feature count mismatch"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(Schema::real(d, k));
    for i in 0..spec.per_class * k {
        let c = i % k;
        let row: Vec<f64> = (0..d)
            .map(|f| {
                let v = normal_ms(&mut rng, spec.means[c][f], spec.stds[c][f]);
                match spec.quantum {
                    Some(q) => (v / q).round() * q,
                    None => v,
                }
            })
            .collect();
        b.push_row(&row, c as ClassId)
            .expect("generated row is valid");
    }
    b.finish()
}

/// Parameters for [`imbalanced_blobs`]: class-conditional Gaussians with
/// *per-class* row counts, for workloads where one class dominates the
/// training set (the regime where removal attacks on the minority class
/// are cheapest and certified budgets collapse fastest).
#[derive(Debug, Clone)]
pub struct ImbalanceSpec {
    /// Per-class cluster means; all must share one dimension.
    pub means: Vec<Vec<f64>>,
    /// Per-class, per-feature standard deviations (same shape as `means`).
    pub stds: Vec<Vec<f64>>,
    /// Rows generated per class (may differ across classes; zero skips a
    /// class entirely).
    pub counts: Vec<usize>,
    /// Optional quantisation step, as in [`BlobSpec::quantum`].
    pub quantum: Option<f64>,
}

/// Class-imbalanced Gaussian generator.
///
/// Rows are emitted in a deterministic proportional interleave: each step
/// picks the class whose emitted fraction of its quota is lowest (ties go
/// to the lower class id), so any prefix of the dataset preserves the
/// requested imbalance ratio.
///
/// # Panics
///
/// Panics if `means`/`stds`/`counts` shapes disagree, are empty, or all
/// counts are zero.
pub fn imbalanced_blobs(spec: &ImbalanceSpec, seed: u64) -> Dataset {
    let k = spec.means.len();
    assert!(
        k > 0 && spec.stds.len() == k && spec.counts.len() == k,
        "means/stds/counts class count mismatch"
    );
    let d = spec.means[0].len();
    assert!(d > 0, "blobs need at least one feature");
    for (m, s) in spec.means.iter().zip(&spec.stds) {
        assert!(
            m.len() == d && s.len() == d,
            "means/stds feature count mismatch"
        );
    }
    let total: usize = spec.counts.iter().sum();
    assert!(total > 0, "at least one class must have rows");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(Schema::real(d, k));
    let mut emitted = vec![0usize; k];
    for _ in 0..total {
        // The class furthest behind its quota, proportionally.
        let c = (0..k)
            .filter(|&c| emitted[c] < spec.counts[c])
            .min_by(|&a, &b| {
                let fa = (emitted[a] + 1) as f64 / spec.counts[a] as f64;
                let fb = (emitted[b] + 1) as f64 / spec.counts[b] as f64;
                fa.partial_cmp(&fb).unwrap().then(a.cmp(&b))
            })
            .expect("some quota remains");
        emitted[c] += 1;
        let row: Vec<f64> = (0..d)
            .map(|f| {
                let v = normal_ms(&mut rng, spec.means[c][f], spec.stds[c][f]);
                match spec.quantum {
                    Some(q) => (v / q).round() * q,
                    None => v,
                }
            })
            .collect();
        b.push_row(&row, c as ClassId)
            .expect("generated row is valid");
    }
    b.finish()
}

/// Two interleaved half-moons: the classic non-axis-aligned 2-class
/// benchmark, where no single threshold split separates the classes and
/// depth-2 trees must combine both features.
///
/// Class 0 is the upper arc, class 1 the lower arc shifted into the upper
/// arc's concavity; both are scaled by 4, perturbed by Gaussian `noise`,
/// and quantised to 0.05 so repeated feature values occur as in real
/// data. Rows alternate classes so prefix subsets stay balanced.
///
/// # Panics
///
/// Panics if `per_class` is zero.
pub fn two_moons(per_class: usize, noise: f64, seed: u64) -> Dataset {
    assert!(per_class > 0, "moons need at least one row per class");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(Schema::real(2, 2));
    let quantise = |v: f64| (v / 0.05).round() * 0.05;
    for i in 0..2 * per_class {
        let c = i % 2;
        let t = std::f64::consts::PI * rng.random::<f64>();
        let (x, y) = if c == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        let row = [
            quantise(4.0 * x + noise * normal(&mut rng)),
            quantise(4.0 * y + noise * normal(&mut rng)),
        ];
        b.push_row(&row, c as ClassId)
            .expect("generated row is valid");
    }
    b.finish()
}

/// Near-duplicate expansion of a Gaussian blob base: every base row is
/// emitted `copies` times, the original plus `copies − 1` jittered
/// clones (per-feature Gaussian jitter of standard deviation `jitter`,
/// re-quantised to the base spec's quantum). With `jitter = 0` the clones
/// are exact duplicates.
///
/// This is the regime where threshold predicates pile up on identical
/// values: subsets shrink in large steps, `bestSplit#` candidate lists
/// collapse, and an `n`-removal attacker must delete whole duplicate
/// groups to move a split.
///
/// # Panics
///
/// Panics if `copies` is zero or the base spec is malformed.
pub fn near_duplicates(base: &BlobSpec, copies: usize, jitter: f64, seed: u64) -> Dataset {
    assert!(copies > 0, "each base row needs at least one copy");
    let base_ds = gaussian_blobs(base, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd0_d0);
    let mut b = DatasetBuilder::new(base_ds.schema().clone());
    for r in 0..base_ds.len() as u32 {
        let row = base_ds.row_values(r);
        let label = base_ds.label(r);
        b.push_row(&row, label).expect("base row is valid");
        for _ in 1..copies {
            let clone: Vec<f64> = row
                .iter()
                .map(|&v| {
                    let j = v + jitter * normal(&mut rng);
                    match base.quantum {
                        Some(q) => (j / q).round() * q,
                        None => j,
                    }
                })
                .collect();
            b.push_row(&clone, label).expect("jittered row is valid");
        }
    }
    b.finish()
}

/// Categorical data one-hot encoded into boolean features.
///
/// Each row draws one of `n_categories` categories round-robin, sets
/// exactly that indicator among the first `n_categories` features, and
/// appends two pure-noise coin-flip features (so `bestSplit#` has
/// uninformative predicates to reject). The label is membership in the
/// first two categories — a depth-2 expressible concept over one-hot
/// splits (`x₀ = 1`, else `x₁ = 1`) — flipped with probability
/// `label_noise`.
///
/// # Panics
///
/// Panics if `n_categories` is zero or `rows` is zero.
pub fn one_hot_categorical(
    n_categories: usize,
    rows: usize,
    label_noise: f64,
    seed: u64,
) -> Dataset {
    assert!(n_categories > 0, "need at least one category");
    assert!(rows > 0, "need at least one row");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(Schema::boolean(n_categories + 2, 2));
    for i in 0..rows {
        let cat = i % n_categories;
        let mut row = vec![0.0; n_categories + 2];
        row[cat] = 1.0;
        row[n_categories] = f64::from(rng.random::<bool>());
        row[n_categories + 1] = f64::from(rng.random::<bool>());
        let mut label = ClassId::from(cat < 2.min(n_categories));
        if rng.random::<f64>() < label_noise {
            label = 1 - label;
        }
        b.push_row(&row, label).expect("generated row is valid");
    }
    b.finish()
}

/// Iris stand-in: 150 rows, 4 real features, 3 classes.
///
/// Class-conditional Gaussians use the published per-class means and
/// standard deviations of the real Iris data (sepal length/width, petal
/// length/width), quantised to 0.1 like the original measurements. Setosa is
/// linearly separable on petal length, so a depth-1 tree leaves a 50/50
/// versicolor/virginica leaf — the quirk footnote 10 of the paper discusses.
pub fn iris_like(seed: u64) -> Dataset {
    let spec = BlobSpec {
        means: vec![
            vec![5.01, 3.43, 1.46, 0.25], // setosa
            vec![5.94, 2.77, 4.26, 1.33], // versicolor
            vec![6.59, 2.97, 5.55, 2.03], // virginica
        ],
        stds: vec![
            vec![0.35, 0.38, 0.17, 0.11],
            vec![0.52, 0.31, 0.47, 0.20],
            vec![0.64, 0.32, 0.55, 0.27],
        ],
        per_class: 50,
        quantum: Some(0.1),
    };
    let ds = gaussian_blobs(&spec, seed);
    relabel_classes(ds, ["Setosa", "Versicolour", "Virginica"])
}

/// Mammographic Masses stand-in: 830 rows, 5 ordinal features, 2 classes.
///
/// Features mirror the UCI attributes — BI-RADS assessment (1–5), age
/// (18–96), mass shape (1–4), mass margin (1–5), mass density (1–4) — drawn
/// from overlapping class-conditional distributions tuned so a shallow tree
/// reaches ≈80% accuracy, matching Table 1. Low feature cardinality keeps
/// the predicate space small, as in the real dataset.
pub fn mammographic_like(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::real(5, 2).with_class_names(["benign", "malignant"]);
    let mut b = DatasetBuilder::new(schema);
    let clampi = |v: f64, lo: f64, hi: f64| v.round().clamp(lo, hi);
    for i in 0..830 {
        let malignant = i % 2 == 1;
        let c: ClassId = malignant as ClassId;
        // Ordinal severity scores shift up for malignant masses, with
        // enough overlap that accuracies plateau near the paper's ≈83%.
        let (bshift, ashift) = if malignant { (1.5, 14.0) } else { (0.0, 0.0) };
        let birads = clampi(normal_ms(&mut rng, 3.0 + bshift, 0.9), 1.0, 5.0);
        let age = clampi(normal_ms(&mut rng, 50.0 + ashift, 12.0), 18.0, 96.0);
        let shape = clampi(
            normal_ms(&mut rng, if malignant { 3.4 } else { 1.9 }, 1.0),
            1.0,
            4.0,
        );
        let margin = clampi(
            normal_ms(&mut rng, if malignant { 3.7 } else { 1.8 }, 1.1),
            1.0,
            5.0,
        );
        let density = clampi(normal_ms(&mut rng, 2.9, 0.55), 1.0, 4.0);
        b.push_row(&[birads, age, shape, margin, density], c)
            .expect("generated row is valid");
    }
    b.finish()
}

/// Wisconsin Diagnostic Breast Cancer stand-in: 569 rows, 30 real features,
/// 2 classes (357 benign / 212 malignant, as in the UCI original).
///
/// The real WDBC has 10 cell-nucleus measurements, each reported as mean,
/// standard error, and "worst"; the three views of one measurement are
/// strongly correlated. We reproduce that: 10 latent per-sample factors,
/// each emitted three times with different scales and noise. Malignant
/// samples shift the latent factors up by a class margin that yields ≈92%
/// depth-2 accuracy.
pub fn wdbc_like(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::real(30, 2).with_class_names(["benign", "malignant"]);
    let mut b = DatasetBuilder::new(schema);
    // Base magnitudes loosely follow the real data (radius ~14, texture ~19,
    // perimeter ~92, area ~655, then unit-scale shape statistics).
    const BASE: [f64; 10] = [
        14.0, 19.0, 92.0, 655.0, 0.096, 0.104, 0.089, 0.049, 0.181, 0.063,
    ];
    const SPREAD: [f64; 10] = [
        3.5, 4.3, 24.0, 350.0, 0.014, 0.053, 0.080, 0.039, 0.027, 0.007,
    ];
    for i in 0..569 {
        let malignant = i % 569 < 212; // 212 malignant, 357 benign
        let c: ClassId = malignant as ClassId;
        let mut row = Vec::with_capacity(30);
        let sev = if malignant {
            1.3 + 0.45 * normal(&mut rng)
        } else {
            -0.9 + 0.45 * normal(&mut rng)
        };
        let mut latent = [0.0f64; 10];
        for (j, l) in latent.iter_mut().enumerate() {
            *l = BASE[j] + SPREAD[j] * (0.75 * sev + 0.5 * normal(&mut rng));
        }
        // mean block, then standard-error block, then "worst" block.
        for &l in &latent {
            row.push(l);
        }
        for (j, &l) in latent.iter().enumerate() {
            row.push(
                (l - BASE[j]).abs() * 0.12
                    + SPREAD[j] * 0.05 * (1.0 + 0.3 * normal(&mut rng).abs()),
            );
        }
        for (j, &l) in latent.iter().enumerate() {
            row.push(l + SPREAD[j] * (0.8 + 0.25 * normal(&mut rng).abs()));
        }
        b.push_row(&row, c).expect("generated row is valid");
    }
    b.finish()
}

/// Which MNIST-1-7 variant to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MnistVariant {
    /// 8-bit grayscale pixels treated as real values (MNIST-1-7-Real).
    Real,
    /// Most-significant-bit pixels (MNIST-1-7-Binary).
    Binary,
}

/// MNIST-1-7 stand-in: programmatically rendered 28×28 digit images of
/// "one" (class 0) and "seven" (class 1).
///
/// A `1` is a near-vertical stroke with a short top flag; a `7` is a top bar
/// plus a long diagonal. Renders vary translation, slant, stroke thickness,
/// ink intensity, and per-pixel noise, giving the sparse-margin pixel
/// structure (a few highly informative pixels) that makes some real MNIST
/// test digits provably robust at large `n`.
///
/// Rows alternate classes so prefix subsets stay balanced.
pub fn mnist17_like(variant: MnistVariant, n_rows: usize, seed: u64) -> Dataset {
    const SIDE: usize = 28;
    let schema = match variant {
        MnistVariant::Real => Schema::real(SIDE * SIDE, 2),
        MnistVariant::Binary => Schema::boolean(SIDE * SIDE, 2),
    }
    .with_class_names(["one", "seven"]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n_rows {
        let seven = i % 2 == 1;
        // ~1% of real MNIST-1-7 digits are ambiguous enough to defeat a
        // shallow tree; model that as label noise so accuracies saturate
        // near the paper's 97–99% instead of at 100%.
        let label = if rng.random::<f64>() < 0.01 {
            !seven
        } else {
            seven
        };
        let img = render_digit(&mut rng, seven, SIDE);
        let row: Vec<f64> = match variant {
            MnistVariant::Real => img.iter().map(|&p| p as f64).collect(),
            MnistVariant::Binary => img
                .iter()
                .map(|&p| if p >= 128 { 1.0 } else { 0.0 })
                .collect(),
        };
        b.push_row(&row, label as ClassId)
            .expect("generated row is valid");
    }
    b.finish()
}

/// Rasterises one noisy digit onto a `side × side` grayscale grid.
fn render_digit(rng: &mut StdRng, seven: bool, side: usize) -> Vec<u8> {
    let mut img = vec![0u8; side * side];
    let s = side as f64;
    // MNIST digits are size-normalised and centred, so positional jitter is
    // small; that is what makes a handful of pixels highly informative (and
    // depth-1 trees ~95% accurate, Table 1).
    let dx = rng.random_range(-1.5..1.5);
    let dy = rng.random_range(-1.5..1.5);
    let slant = rng.random_range(-0.08..0.08);
    let thickness = rng.random_range(1.2..2.6);
    let ink = rng.random_range(190.0..255.0);
    if seven {
        // Top bar.
        stroke(
            &mut img,
            side,
            (0.25 * s + dx, 0.22 * s + dy),
            (0.75 * s + dx, 0.22 * s + dy + slant * 4.0),
            thickness,
            ink,
        );
        // Diagonal descender.
        stroke(
            &mut img,
            side,
            (0.72 * s + dx, 0.24 * s + dy),
            (0.40 * s + dx + slant * s, 0.85 * s + dy),
            thickness,
            ink,
        );
    } else {
        // Main vertical stroke of the 1.
        stroke(
            &mut img,
            side,
            (0.52 * s + dx + slant * s * 0.5, 0.18 * s + dy),
            (0.50 * s + dx - slant * s * 0.5, 0.85 * s + dy),
            thickness,
            ink,
        );
        // Short top flag (many handwritten ones omit it).
        if rng.random::<f64>() < 0.35 {
            stroke(
                &mut img,
                side,
                (0.44 * s + dx, 0.27 * s + dy),
                (0.52 * s + dx, 0.20 * s + dy),
                thickness * 0.7,
                ink * 0.85,
            );
        }
    }
    // Sensor noise: sparse speckle + mild blur-like attenuation.
    for p in img.iter_mut() {
        if rng.random::<f64>() < 0.015 {
            *p = p.saturating_add(rng.random_range(20..90));
        }
        if *p > 0 && rng.random::<f64>() < 0.05 {
            *p = (*p as f64 * rng.random_range(0.4..0.9)) as u8;
        }
    }
    img
}

/// Draws an anti-aliasing-free thick line segment by distance-to-segment
/// testing every pixel in the segment's bounding box.
fn stroke(img: &mut [u8], side: usize, a: (f64, f64), b: (f64, f64), thickness: f64, ink: f64) {
    let (ax, ay) = a;
    let (bx, by) = b;
    let (minx, maxx) = (ax.min(bx) - thickness, ax.max(bx) + thickness);
    let (miny, maxy) = (ay.min(by) - thickness, ay.max(by) + thickness);
    let len2 = (bx - ax).powi(2) + (by - ay).powi(2);
    let x0 = minx.floor().max(0.0) as usize;
    let x1 = (maxx.ceil() as usize).min(side.saturating_sub(1));
    let y0 = miny.floor().max(0.0) as usize;
    let y1 = (maxy.ceil() as usize).min(side.saturating_sub(1));
    for y in y0..=y1 {
        for x in x0..=x1 {
            let (px, py) = (x as f64 + 0.5, y as f64 + 0.5);
            let t = if len2 == 0.0 {
                0.0
            } else {
                (((px - ax) * (bx - ax) + (py - ay) * (by - ay)) / len2).clamp(0.0, 1.0)
            };
            let (cx, cy) = (ax + t * (bx - ax), ay + t * (by - ay));
            let dist = ((px - cx).powi(2) + (py - cy).powi(2)).sqrt();
            if dist <= thickness * 0.5 {
                let cell = &mut img[y * side + x];
                *cell = (*cell).max(ink as u8);
            } else if dist <= thickness * 0.5 + 1.0 {
                let fade = ink * (thickness * 0.5 + 1.0 - dist).clamp(0.0, 1.0) * 0.6;
                let cell = &mut img[y * side + x];
                *cell = (*cell).max(fade as u8);
            }
        }
    }
}

/// Rebuilds a dataset with new class names (generators use it to attach the
/// paper's class labels).
fn relabel_classes<const N: usize>(ds: Dataset, names: [&str; N]) -> Dataset {
    let schema = ds.schema().clone().with_class_names(names);
    let rows: Vec<(Vec<f64>, ClassId)> = (0..ds.len())
        .map(|i| (ds.row_values(i as u32), ds.label(i as u32)))
        .collect();
    Dataset::from_rows(schema, &rows).expect("relabel preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureKind;

    #[test]
    fn figure2_matches_paper() {
        let ds = figure2();
        assert_eq!(ds.len(), 13);
        assert_eq!(ds.n_features(), 1);
        assert_eq!(ds.class_counts(), vec![7, 6]);
        // Left of x ≤ 10: 9 points, 7 white 2 black (Example 3.4).
        let (mut white_le, mut black_le, mut black_gt) = (0, 0, 0);
        for r in 0..13u32 {
            let x = ds.value(r, 0);
            if x <= 10.0 {
                if ds.label(r) == 0 {
                    white_le += 1;
                } else {
                    black_le += 1;
                }
            } else if ds.label(r) == 1 {
                black_gt += 1;
            }
        }
        assert_eq!((white_le, black_le, black_gt), (7, 2, 4));
        // Black points on the left are exactly 0 and 4 (§2).
        for r in 0..13u32 {
            let x = ds.value(r, 0);
            if x <= 10.0 && ds.label(r) == 1 {
                assert!(x == 0.0 || x == 4.0);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(iris_like(7), iris_like(7));
        assert_eq!(mammographic_like(7), mammographic_like(7));
        assert_eq!(wdbc_like(7), wdbc_like(7));
        assert_eq!(
            mnist17_like(MnistVariant::Binary, 20, 7),
            mnist17_like(MnistVariant::Binary, 20, 7)
        );
        assert_ne!(iris_like(7), iris_like(8));
    }

    #[test]
    fn iris_shape() {
        let ds = iris_like(1);
        assert_eq!(ds.len(), 150);
        assert_eq!(ds.n_features(), 4);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.class_counts(), vec![50, 50, 50]);
        assert_eq!(ds.schema().classes()[0], "Setosa");
        // Quantised to 0.1.
        for r in 0..ds.len() as u32 {
            for f in 0..4 {
                let v = ds.value(r, f) * 10.0;
                assert!(
                    (v - v.round()).abs() < 1e-6,
                    "iris values are 0.1-quantised"
                );
            }
        }
        // Setosa petal length (feature 2) is well separated from the rest.
        let max_setosa = (0..150u32)
            .filter(|&r| ds.label(r) == 0)
            .map(|r| ds.value(r, 2))
            .fold(f64::MIN, f64::max);
        let min_other = (0..150u32)
            .filter(|&r| ds.label(r) != 0)
            .map(|r| ds.value(r, 2))
            .fold(f64::MAX, f64::min);
        assert!(
            max_setosa < min_other,
            "setosa should be separable on petal length"
        );
    }

    #[test]
    fn mammographic_shape() {
        let ds = mammographic_like(1);
        assert_eq!(ds.len(), 830);
        assert_eq!(ds.n_features(), 5);
        assert_eq!(ds.n_classes(), 2);
        // Ordinal features stay in range.
        for r in 0..ds.len() as u32 {
            assert!((1.0..=5.0).contains(&ds.value(r, 0)));
            assert!((18.0..=96.0).contains(&ds.value(r, 1)));
            assert!((1.0..=4.0).contains(&ds.value(r, 2)));
            assert!((1.0..=5.0).contains(&ds.value(r, 3)));
            assert!((1.0..=4.0).contains(&ds.value(r, 4)));
        }
    }

    #[test]
    fn wdbc_shape_and_class_balance() {
        let ds = wdbc_like(1);
        assert_eq!(ds.len(), 569);
        assert_eq!(ds.n_features(), 30);
        let counts = ds.class_counts();
        assert_eq!(counts[1], 212, "212 malignant as in UCI WDBC");
        assert_eq!(counts[0], 357);
    }

    #[test]
    fn mnist_binary_is_boolean_and_balanced() {
        let ds = mnist17_like(MnistVariant::Binary, 40, 3);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.n_features(), 784);
        // Classes alternate; ~1% label noise can nudge the exact counts.
        let counts = ds.class_counts();
        assert!(
            counts.iter().all(|&c| (17..=23).contains(&c)),
            "counts {counts:?}"
        );
        assert!(ds
            .schema()
            .features()
            .iter()
            .all(|f| f.kind == FeatureKind::Bool));
        // Images are not blank and not full.
        let on: usize = (0..40u32)
            .map(|r| (0..784).filter(|&f| ds.value(r, f) == 1.0).count())
            .sum();
        assert!(on > 40 * 10, "digits should have ink");
        assert!(on < 40 * 400, "digits should be sparse");
    }

    #[test]
    fn mnist_real_pixels_in_byte_range() {
        let ds = mnist17_like(MnistVariant::Real, 10, 3);
        for r in 0..10u32 {
            for f in 0..784 {
                let v = ds.value(r, f);
                assert!((0.0..=255.0).contains(&v));
                assert_eq!(v, v.round(), "pixels are 8-bit integers");
            }
        }
    }

    #[test]
    fn ones_and_sevens_differ() {
        // The top bar of a 7 occupies pixels a 1 rarely touches: the average
        // ink in the top-left bar region should differ strongly by class.
        let ds = mnist17_like(MnistVariant::Binary, 200, 5);
        let bar_region: Vec<usize> = (6..8)
            .flat_map(|y| (7..12).map(move |x| y * 28 + x))
            .collect();
        let mean_ink = |class: ClassId| -> f64 {
            let rows: Vec<u32> = (0..200u32).filter(|&r| ds.label(r) == class).collect();
            let total: f64 = rows
                .iter()
                .map(|&r| bar_region.iter().map(|&f| ds.value(r, f)).sum::<f64>())
                .sum();
            total / rows.len() as f64
        };
        assert!(mean_ink(1) > mean_ink(0) + 0.5, "sevens have a top bar");
    }

    #[test]
    fn blob_spec_validation() {
        let spec = BlobSpec {
            means: vec![vec![0.0], vec![5.0]],
            stds: vec![vec![1.0], vec![1.0]],
            per_class: 10,
            quantum: None,
        };
        let ds = gaussian_blobs(&spec, 0);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.class_counts(), vec![10, 10]);
        // Interleaved classes.
        assert_eq!(ds.label(0), 0);
        assert_eq!(ds.label(1), 1);
    }

    #[test]
    fn imbalanced_blobs_ratio_holds_on_prefixes() {
        let spec = ImbalanceSpec {
            means: vec![vec![0.0], vec![8.0]],
            stds: vec![vec![1.0], vec![1.0]],
            counts: vec![160, 40],
            quantum: Some(0.1),
        };
        let ds = imbalanced_blobs(&spec, 3);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.class_counts(), vec![160, 40]);
        assert_eq!(ds, imbalanced_blobs(&spec, 3), "deterministic in the seed");
        assert_ne!(ds, imbalanced_blobs(&spec, 4));
        // Proportional interleave: every 25% prefix carries ~the 4:1 ratio.
        for frac in [50usize, 100, 150] {
            let minority = (0..frac as u32).filter(|&r| ds.label(r) == 1).count();
            let expected = frac / 5;
            assert!(
                minority.abs_diff(expected) <= 1,
                "prefix {frac}: {minority} minority rows, expected ~{expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "counts class count mismatch")]
    fn imbalanced_blobs_shape_mismatch_panics() {
        let spec = ImbalanceSpec {
            means: vec![vec![0.0], vec![8.0]],
            stds: vec![vec![1.0], vec![1.0]],
            counts: vec![10],
            quantum: None,
        };
        let _ = imbalanced_blobs(&spec, 0);
    }

    #[test]
    fn two_moons_shape_and_interleave() {
        let ds = two_moons(75, 0.1, 11);
        assert_eq!(ds.len(), 150);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.class_counts(), vec![75, 75]);
        assert_eq!(ds, two_moons(75, 0.1, 11), "deterministic in the seed");
        assert_ne!(ds, two_moons(75, 0.1, 12));
        // Classes alternate.
        assert_eq!(ds.label(0), 0);
        assert_eq!(ds.label(1), 1);
        // Values are 0.05-quantised.
        for r in 0..ds.len() as u32 {
            for f in 0..2 {
                let v = ds.value(r, f) / 0.05;
                assert!((v - v.round()).abs() < 1e-6, "moons are 0.05-quantised");
            }
        }
        // The arcs interleave vertically: no single horizontal or vertical
        // threshold separates the classes (that is the point of moons).
        for f in 0..2 {
            let max0 = (0..150u32)
                .filter(|&r| ds.label(r) == 0)
                .map(|r| ds.value(r, f))
                .fold(f64::MIN, f64::max);
            let min1 = (0..150u32)
                .filter(|&r| ds.label(r) == 1)
                .map(|r| ds.value(r, f))
                .fold(f64::MAX, f64::min);
            assert!(min1 < max0, "feature {f} should not linearly separate");
        }
    }

    #[test]
    fn near_duplicates_replicates_rows() {
        let base = BlobSpec {
            means: vec![vec![0.0, 0.0], vec![9.0, 9.0]],
            stds: vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            per_class: 20,
            quantum: Some(0.1),
        };
        let ds = near_duplicates(&base, 4, 0.0, 5);
        assert_eq!(ds.len(), 4 * 40);
        assert_eq!(ds.class_counts(), vec![80, 80]);
        assert_eq!(ds, near_duplicates(&base, 4, 0.0, 5));
        // Zero jitter: each group of 4 consecutive rows is identical.
        for g in 0..40u32 {
            let first = ds.row_values(4 * g);
            for i in 1..4u32 {
                assert_eq!(ds.row_values(4 * g + i), first, "group {g} copy {i}");
                assert_eq!(ds.label(4 * g + i), ds.label(4 * g));
            }
        }
        // Small jitter keeps copies near (but not always equal to) the
        // original, on the same quantisation grid.
        let jds = near_duplicates(&base, 4, 0.05, 5);
        assert_eq!(jds.len(), 160);
        for r in 0..jds.len() as u32 {
            for f in 0..2 {
                let v = jds.value(r, f) * 10.0;
                assert!((v - v.round()).abs() < 1e-6, "jitter stays quantised");
            }
        }
        let moved = (0..40u32)
            .flat_map(|g| (1..4u32).map(move |i| (g, i)))
            .filter(|&(g, i)| jds.row_values(4 * g + i) != jds.row_values(4 * g))
            .count();
        assert!(moved > 0, "some jittered copy differs from its original");
    }

    #[test]
    fn one_hot_categorical_invariants() {
        let ds = one_hot_categorical(8, 240, 0.05, 7);
        assert_eq!(ds.len(), 240);
        assert_eq!(ds.n_features(), 10);
        assert_eq!(ds, one_hot_categorical(8, 240, 0.05, 7));
        assert!(ds
            .schema()
            .features()
            .iter()
            .all(|f| f.kind == FeatureKind::Bool));
        for r in 0..ds.len() as u32 {
            let hot: Vec<usize> = (0..8).filter(|&f| ds.value(r, f) == 1.0).collect();
            assert_eq!(hot.len(), 1, "exactly one category indicator set");
            // Round-robin categories: row r carries category r mod 8.
            assert_eq!(hot[0], r as usize % 8);
        }
        // ~5% label noise: the category-membership labelling holds for
        // most rows (label 1 iff category 0 or 1).
        let clean = (0..240u32)
            .filter(|&r| ds.label(r) == ClassId::from(r as usize % 8 < 2))
            .count();
        assert!((200..240).contains(&clean), "noise flipped {clean}/240");
        // Noise features are mixed, not constant.
        for f in [8, 9] {
            let on = (0..240u32).filter(|&r| ds.value(r, f) == 1.0).count();
            assert!((60..180).contains(&on), "noise feature {f}: {on} set");
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn blob_spec_shape_mismatch_panics() {
        let spec = BlobSpec {
            means: vec![vec![0.0, 1.0]],
            stds: vec![vec![1.0]],
            per_class: 1,
            quantum: None,
        };
        let _ = gaussian_blobs(&spec, 0);
    }
}
