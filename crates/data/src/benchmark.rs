//! The paper's five evaluation benchmarks, packaged (§6.1, Table 1).

use crate::dataset::Dataset;
use crate::split::{stratified_split, take_rows, train_test_split};
use crate::synth::{self, MnistVariant};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Evaluation scale.
///
/// The paper runs MNIST-scale experiments for hours on a 160 GB machine;
/// [`Scale::Small`] shrinks only the MNIST-like workloads so the full
/// harness completes on a laptop, while [`Scale::Paper`] reproduces the
/// published sizes. UCI-like datasets are identical at both scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// MNIST-like: 2 000 train / 60 test.
    #[default]
    Small,
    /// Paper sizes: MNIST-like 13 007 train / 100-element test subset
    /// (the paper also fixes a random 100-element subset, footnote 9).
    Paper,
}

/// One of the paper's five benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// UCI Iris stand-in (150×4, 3 classes).
    Iris,
    /// UCI Mammographic Masses stand-in (830×5, 2 classes).
    Mammographic,
    /// UCI Wisconsin Diagnostic Breast Cancer stand-in (569×30, 2 classes).
    Wdbc,
    /// MNIST-1-7 with most-significant-bit pixels (boolean features).
    Mnist17Binary,
    /// MNIST-1-7 with 8-bit grayscale pixels (real features).
    Mnist17Real,
}

impl Benchmark {
    /// All five benchmarks, in Table 1 order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Iris,
        Benchmark::Mammographic,
        Benchmark::Wdbc,
        Benchmark::Mnist17Binary,
        Benchmark::Mnist17Real,
    ];

    /// Table 1 display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Iris => "Iris",
            Benchmark::Mammographic => "Mammographic Masses",
            Benchmark::Wdbc => "Wisconsin Diagnostic Breast Cancer",
            Benchmark::Mnist17Binary => "MNIST-1-7-Binary",
            Benchmark::Mnist17Real => "MNIST-1-7-Real",
        }
    }

    /// Short CLI identifier.
    pub fn id(self) -> &'static str {
        match self {
            Benchmark::Iris => "iris",
            Benchmark::Mammographic => "mammo",
            Benchmark::Wdbc => "wdbc",
            Benchmark::Mnist17Binary => "mnist17-binary",
            Benchmark::Mnist17Real => "mnist17-real",
        }
    }

    /// Parses a CLI identifier.
    pub fn from_id(id: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.id() == id)
    }

    /// Generates the `(train, test)` pair for this benchmark.
    ///
    /// UCI-like datasets use the paper's 80/20 random split; MNIST-like
    /// datasets generate train and test sets directly, and at
    /// [`Scale::Paper`] fix a random 100-element test subset exactly as the
    /// paper does (footnote 9).
    pub fn load(self, scale: Scale, seed: u64) -> (Dataset, Dataset) {
        match self {
            // Iris uses a stratified split so the depth-1 tree's mixed leaf
            // stays an even Versicolour/Virginica split (footnote 10).
            Benchmark::Iris => stratified_split(&synth::iris_like(seed), 0.2, seed ^ 0x5eed),
            Benchmark::Mammographic => {
                train_test_split(&synth::mammographic_like(seed), 0.2, seed ^ 0x5eed)
            }
            Benchmark::Wdbc => train_test_split(&synth::wdbc_like(seed), 0.2, seed ^ 0x5eed),
            Benchmark::Mnist17Binary => mnist_pair(MnistVariant::Binary, scale, seed),
            Benchmark::Mnist17Real => mnist_pair(MnistVariant::Real, scale, seed),
        }
    }

    /// Training-set size the paper reports in Table 1.
    pub fn paper_train_size(self) -> usize {
        match self {
            Benchmark::Iris => 120,
            Benchmark::Mammographic => 664,
            Benchmark::Wdbc => 456,
            Benchmark::Mnist17Binary | Benchmark::Mnist17Real => 13_007,
        }
    }

    /// Whether the benchmark uses boolean features.
    pub fn is_boolean(self) -> bool {
        matches!(self, Benchmark::Mnist17Binary)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn mnist_pair(variant: MnistVariant, scale: Scale, seed: u64) -> (Dataset, Dataset) {
    let (n_train, n_test_pool, n_test_subset) = match scale {
        Scale::Small => (2_000, 60, 60),
        Scale::Paper => (13_007, 2_163, 100),
    };
    let train = synth::mnist17_like(variant, n_train, seed);
    let test_pool = synth::mnist17_like(variant, n_test_pool, seed ^ 0x7e57);
    if n_test_subset >= test_pool.len() {
        (train, test_pool)
    } else {
        let mut rows: Vec<u32> = (0..test_pool.len() as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x100);
        rows.shuffle(&mut rng);
        rows.truncate(n_test_subset);
        (train, take_rows(&test_pool, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_small_scale() {
        let (train, test) = Benchmark::Iris.load(Scale::Small, 0);
        assert_eq!((train.len(), test.len()), (120, 30));
        let (train, test) = Benchmark::Mammographic.load(Scale::Small, 0);
        assert_eq!((train.len(), test.len()), (664, 166));
        let (train, test) = Benchmark::Wdbc.load(Scale::Small, 0);
        assert_eq!((train.len(), test.len()), (456, 113));
        let (train, test) = Benchmark::Mnist17Binary.load(Scale::Small, 0);
        assert_eq!((train.len(), test.len()), (2_000, 60));
    }

    #[test]
    fn ids_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_id(b.id()), Some(b));
            assert!(!b.name().is_empty());
            assert!(!b.to_string().is_empty());
        }
        assert_eq!(Benchmark::from_id("nope"), None);
    }

    #[test]
    fn loads_are_deterministic() {
        let a = Benchmark::Wdbc.load(Scale::Small, 9);
        let b = Benchmark::Wdbc.load(Scale::Small, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_metadata() {
        assert_eq!(Benchmark::Mnist17Real.paper_train_size(), 13_007);
        assert!(Benchmark::Mnist17Binary.is_boolean());
        assert!(!Benchmark::Mnist17Real.is_boolean());
    }
}
