//! Property tests for CSV round trips over randomly generated datasets.

use antidote_data::csv::{read_csv, write_csv};
use antidote_data::{ClassId, Dataset, Schema};
use proptest::prelude::*;

/// Arbitrary small dataset: random finite values (shrunk to a printable
/// range) and random labels.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    let row = (prop::collection::vec(-1e6..1e6f64, 3), 0u16..3);
    prop::collection::vec(row, 1..40).prop_map(|rows| {
        let rows: Vec<(Vec<f64>, ClassId)> =
            rows.into_iter().map(|(v, l)| (v, l as ClassId)).collect();
        Dataset::from_rows(Schema::real(3, 3), &rows).expect("rows are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → read preserves every value and every label (modulo class
    /// re-enumeration, compared through names).
    #[test]
    fn csv_round_trip(ds in dataset_strategy()) {
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        prop_assert_eq!(back.n_features(), ds.n_features());
        for r in 0..ds.len() as u32 {
            for f in 0..ds.n_features() {
                prop_assert_eq!(back.value(r, f), ds.value(r, f));
            }
            prop_assert_eq!(
                &back.schema().classes()[back.label(r) as usize],
                &ds.schema().classes()[ds.label(r) as usize]
            );
        }
    }

    /// Round-tripped datasets produce byte-identical CSV on the second
    /// write (the format is canonical).
    #[test]
    fn csv_is_canonical_after_first_trip(ds in dataset_strategy()) {
        let mut first = Vec::new();
        write_csv(&ds, &mut first).unwrap();
        let back = read_csv(first.as_slice()).unwrap();
        let mut second = Vec::new();
        write_csv(&back, &mut second).unwrap();
        let third = read_csv(second.as_slice()).unwrap();
        let mut fourth = Vec::new();
        write_csv(&third, &mut fourth).unwrap();
        prop_assert_eq!(second, fourth);
    }
}
