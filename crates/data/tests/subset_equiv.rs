//! Differential suite: the word-packed `Subset` backend versus a
//! reference sorted-`Vec` model.
//!
//! The bitset rewrite must be *observationally identical* to the
//! historical sorted-index representation — same ascending iteration
//! order, same counts, same algebra — because trace recording, minimal
//! counterexample ordering, and every deterministic fold downstream
//! depend on it. The model here implements each operation the naive way
//! over a sorted unique index vector; every property drives both
//! implementations with the same random inputs and demands equal results.

use antidote_data::{ClassId, Dataset, RowId, Schema, Subset, SubsetInterner, ThresholdCmp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The reference model: a strictly increasing, deduplicated index vector.
#[derive(Debug, Clone, PartialEq)]
struct Model {
    indices: Vec<RowId>,
}

impl Model {
    fn new(mut indices: Vec<RowId>) -> Model {
        indices.sort_unstable();
        indices.dedup();
        Model { indices }
    }

    fn counts(&self, ds: &Dataset) -> Vec<u32> {
        let mut counts = vec![0u32; ds.n_classes()];
        for &i in &self.indices {
            counts[ds.label(i) as usize] += 1;
        }
        counts
    }

    fn union(&self, other: &Model) -> Model {
        Model::new([self.indices.clone(), other.indices.clone()].concat())
    }

    fn intersect(&self, other: &Model) -> Model {
        Model::new(
            self.indices
                .iter()
                .copied()
                .filter(|i| other.indices.contains(i))
                .collect(),
        )
    }

    fn difference(&self, other: &Model) -> Model {
        Model::new(
            self.indices
                .iter()
                .copied()
                .filter(|i| !other.indices.contains(i))
                .collect(),
        )
    }

    fn difference_len(&self, other: &Model) -> usize {
        self.difference(other).indices.len()
    }

    fn is_subset_of(&self, other: &Model) -> bool {
        self.indices.iter().all(|i| other.indices.contains(i))
    }

    fn filter<F: FnMut(RowId) -> bool>(&self, mut keep: F) -> Model {
        Model::new(self.indices.iter().copied().filter(|&i| keep(i)).collect())
    }
}

/// Asserts the packed subset and the model agree on every observation.
fn assert_equiv(ds: &Dataset, s: &Subset, m: &Model, what: &str) {
    assert_eq!(s.indices(), m.indices, "{what}: indices");
    assert_eq!(s.len(), m.indices.len(), "{what}: len");
    assert_eq!(s.is_empty(), m.indices.is_empty(), "{what}: is_empty");
    assert_eq!(s.class_counts(), &m.counts(ds)[..], "{what}: class_counts");
    let pure = m.counts(ds).iter().filter(|&&c| c > 0).count() <= 1;
    assert_eq!(s.is_pure(), pure, "{what}: is_pure");
    // Ascending iteration, bit-identical to the sorted-Vec backend.
    let via_iter: Vec<RowId> = s.iter().collect();
    assert_eq!(via_iter, m.indices, "{what}: iter order");
    assert!(
        via_iter.windows(2).all(|w| w[0] < w[1]),
        "{what}: strictly increasing"
    );
    // Membership agrees for every row of the dataset (and beyond it).
    for row in 0..ds.len() as RowId {
        assert_eq!(
            s.contains(row),
            m.indices.contains(&row),
            "{what}: contains({row})"
        );
    }
    assert!(!s.contains(ds.len() as RowId + 64), "{what}: off the end");
    // Canonical words: no trailing zero word, popcount equals len.
    assert_ne!(s.words().last(), Some(&0), "{what}: canonical words");
    let pop: u32 = s.words().iter().map(|w| w.count_ones()).sum();
    assert_eq!(pop as usize, s.len(), "{what}: popcount");
}

/// A random dataset (spanning multiple words) and two random index sets.
fn random_instance(seed: u64) -> (Dataset, Vec<RowId>, Vec<RowId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.random_range(1..200usize);
    let k = rng.random_range(2..4usize);
    let rows: Vec<(Vec<f64>, ClassId)> = (0..len)
        .map(|_| {
            (
                vec![rng.random_range(0..16) as f64],
                rng.random_range(0..k) as ClassId,
            )
        })
        .collect();
    let ds = Dataset::from_rows(Schema::real(1, k), &rows).unwrap();
    let mut pick = |density: usize| -> Vec<RowId> {
        (0..len as RowId)
            .filter(|_| rng.random_range(0..4usize) < density)
            .collect()
    };
    let a = pick(2);
    let b = pick(1);
    (ds, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Construction, iteration, counts, and membership agree.
    #[test]
    fn construction_matches_model(seed in 0u64..1_000_000) {
        let (ds, a, _) = random_instance(seed);
        // Shuffled, duplicated input must normalise identically.
        let mut noisy = a.clone();
        noisy.extend(a.iter().rev());
        let s = Subset::from_indices(&ds, noisy);
        let m = Model::new(a);
        assert_equiv(&ds, &s, &m, "from_indices");
        let full = Subset::full(&ds);
        let m_full = Model::new((0..ds.len() as RowId).collect());
        assert_equiv(&ds, &full, &m_full, "full");
        assert_equiv(&ds, &Subset::empty(ds.n_classes()),
                     &Model::new(Vec::new()), "empty");
    }

    /// The whole set algebra agrees: union, intersection, difference,
    /// difference_len, and the subset order.
    #[test]
    fn algebra_matches_model(seed in 0u64..1_000_000) {
        let (ds, a, b) = random_instance(seed);
        let (sa, sb) = (
            Subset::from_indices(&ds, a.clone()),
            Subset::from_indices(&ds, b.clone()),
        );
        let (ma, mb) = (Model::new(a), Model::new(b));
        assert_equiv(&ds, &sa.union(&ds, &sb), &ma.union(&mb), "a ∪ b");
        assert_equiv(&ds, &sb.union(&ds, &sa), &mb.union(&ma), "b ∪ a");
        assert_equiv(&ds, &sa.intersect(&ds, &sb), &ma.intersect(&mb), "a ∩ b");
        assert_equiv(&ds, &sa.difference(&ds, &sb), &ma.difference(&mb), "a \\ b");
        assert_equiv(&ds, &sb.difference(&ds, &sa), &mb.difference(&ma), "b \\ a");
        prop_assert_eq!(sa.difference_len(&sb), ma.difference_len(&mb));
        prop_assert_eq!(sb.difference_len(&sa), mb.difference_len(&ma));
        prop_assert_eq!(sa.is_subset_of(&sb), ma.is_subset_of(&mb));
        prop_assert_eq!(sa.intersect(&ds, &sb).is_subset_of(&sa), true);
        prop_assert_eq!(sa.is_subset_of(&sa.union(&ds, &sb)), true);
        // Structural equality is set equality, independent of the
        // construction path.
        prop_assert_eq!(
            sa.union(&ds, &sb) == sb.union(&ds, &sa),
            true,
            "union must be commutative structurally"
        );
    }

    /// Filtering: arbitrary predicates, class filters, and partitions.
    #[test]
    fn filters_match_model(seed in 0u64..1_000_000, threshold in 0.0..16.0f64) {
        let (ds, a, _) = random_instance(seed);
        let s = Subset::from_indices(&ds, a.clone());
        let m = Model::new(a);
        let pred = |r: RowId| ds.value(r, 0) <= threshold;
        assert_equiv(&ds, &s.filter(&ds, pred), &m.filter(pred), "filter");
        let (yes, no) = s.partition(&ds, pred);
        assert_equiv(&ds, &yes, &m.filter(pred), "partition.0");
        assert_equiv(&ds, &no, &m.filter(|r| !pred(r)), "partition.1");
        for class in 0..ds.n_classes() as ClassId {
            assert_equiv(
                &ds,
                &s.filter_class(&ds, class),
                &m.filter(|r| ds.label(r) == class),
                "filter_class",
            );
        }
        // The predicate sees member rows in ascending order (the contract
        // trace recording relies on).
        let mut seen: Vec<RowId> = Vec::new();
        let _ = s.filter(&ds, |r| {
            seen.push(r);
            true
        });
        prop_assert_eq!(seen, m.indices);
    }

    /// Hash-consing differential: interned subsets behave exactly like
    /// reference (un-interned) ones. Equality/hash agree with the model
    /// across construction paths, clones share payloads, and rewiring a
    /// view through the interner changes no observable behavior.
    #[test]
    fn interned_subsets_match_reference_behavior(seed in 0u64..1_000_000) {
        let (ds, a, b) = random_instance(seed);
        let sa = Subset::from_indices(&ds, a.clone());
        // The same set built along a different path: filter from full.
        let keep: std::collections::HashSet<RowId> = a.iter().copied().collect();
        let sa2 = Subset::full(&ds).filter(&ds, |r| keep.contains(&r));
        let sb = Subset::from_indices(&ds, b.clone());
        // Value equality and hash equality follow the model.
        prop_assert_eq!(&sa, &sa2, "construction path must not matter");
        prop_assert_eq!(sa.content_hash(), sa2.content_hash());
        prop_assert!(!sa.shares_repr(&sa2), "distinct allocations pre-interning");
        if Model::new(a.clone()) != Model::new(b.clone()) {
            prop_assert!(sa != sb);
        }
        // Clones share the hash-consed payload.
        let cloned = sa.clone();
        prop_assert!(cloned.shares_repr(&sa));
        // Interning rewires equal payloads onto one allocation and
        // reports hits exactly for re-encountered payloads…
        let mut interner = SubsetInterner::new();
        let (c1, hit1) = interner.intern(&sa);
        let (c2, hit2) = interner.intern(&sa2);
        prop_assert!(!hit1 && hit2);
        prop_assert!(c1.shares_repr(&sa) && c2.shares_repr(&sa));
        let (c3, hit3) = interner.intern(&sb);
        prop_assert_eq!(hit3, sb == sa, "distinct payloads are fresh entries");
        // …and the canonical views are observationally identical to the
        // un-interned originals.
        let m = Model::new(a);
        assert_equiv(&ds, &c2, &m, "interned view");
        prop_assert_eq!(c2.content_hash(), sa.content_hash());
        prop_assert_eq!(c3 == c2, sb == sa);
        // O(1) containment/difference fast paths on shared payloads agree
        // with the word-walking general case.
        prop_assert!(c1.is_subset_of(&c2));
        prop_assert_eq!(c1.difference_len(&c2), 0);
    }

    /// SIMD kernel differential: every chunked vector kernel must agree
    /// with its scalar fallback on arbitrary word vectors — including
    /// empty slices, lengths that are not a multiple of the lane width,
    /// unequal lengths (the zero-extension contracts), and canonical
    /// trailing-zero-trimmed reprs. The learner's bit-identical-ladders
    /// guarantee under `--no-simd` reduces to exactly this equivalence.
    #[cfg(feature = "simd")]
    #[test]
    fn simd_vector_kernels_match_scalar_fallback(
        len_a in 0usize..13,
        len_b in 0usize..13,
        seed in 0u64..1_000_000,
        trim in 0u8..2,
    ) {
        use antidote_data::simd;
        let trim = trim == 1;
        let mut rng = StdRng::seed_from_u64(seed);
        // Bias toward all-zero and all-one words so the subset and
        // first-nonzero early-exit branches are exercised, not just the
        // generic mixed case.
        let word = |rng: &mut StdRng| -> u64 {
            match rng.random_range(0..4u8) {
                0 => 0,
                1 => u64::MAX,
                _ => rng.random(),
            }
        };
        let mut a: Vec<u64> = (0..len_a).map(|_| word(&mut rng)).collect();
        let mut b: Vec<u64> = (0..len_b).map(|_| word(&mut rng)).collect();
        if trim {
            // Canonical `SubsetRepr` shape: no trailing zero words.
            while a.last() == Some(&0) { a.pop(); }
            while b.last() == Some(&0) { b.pop(); }
        }

        // Unary and length-tolerant kernels (b zero-extended past its end).
        prop_assert_eq!(simd::popcount_vector(&a), simd::popcount_scalar(&a));
        prop_assert_eq!(
            simd::andnot_popcount_vector(&a, &b),
            simd::andnot_popcount_scalar(&a, &b)
        );
        prop_assert_eq!(simd::is_subset_vector(&a, &b), simd::is_subset_scalar(&a, &b));
        for from in 0..=a.len() + 1 {
            prop_assert_eq!(
                simd::first_nonzero_word_vector(&a, from),
                simd::first_nonzero_word_scalar(&a, from)
            );
        }
        // a ∩ b ⊆ b must hold through both forms (a true-subset case the
        // random pairs above rarely produce).
        let inter: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
        prop_assert!(simd::is_subset_vector(&inter, &b));
        prop_assert!(simd::is_subset_scalar(&inter, &b));

        // Equal-length kernels, over the common prefix.
        let n = a.len().min(b.len());
        let (pa, pb) = (&a[..n], &b[..n]);
        prop_assert_eq!(
            simd::and_popcount_vector(pa, pb),
            simd::and_popcount_scalar(pa, pb)
        );
        let mut out_v = vec![0u64; n];
        let mut out_s = vec![0u64; n];
        simd::and_words_vector(pa, pb, &mut out_v);
        simd::and_words_scalar(pa, pb, &mut out_s);
        prop_assert_eq!(&out_v, &out_s, "and_words");
        simd::andnot_words_vector(pa, pb, &mut out_v);
        simd::andnot_words_scalar(pa, pb, &mut out_s);
        prop_assert_eq!(&out_v, &out_s, "andnot_words");
        simd::or_words_vector(pa, pb, &mut out_v);
        simd::or_words_scalar(pa, pb, &mut out_s);
        prop_assert_eq!(&out_v, &out_s, "or_words");
        let mut acc_v = pa.to_vec();
        let mut acc_s = pa.to_vec();
        simd::and_in_place_vector(&mut acc_v, pb);
        simd::and_in_place_scalar(&mut acc_s, pb);
        prop_assert_eq!(acc_v, acc_s, "and_in_place");
    }

    /// The word-parallel threshold restriction agrees with the model (and
    /// hence with the closure fallback) for every comparison, including
    /// thresholds below, between, at, and above the observed values.
    #[test]
    fn threshold_restriction_matches_model(seed in 0u64..1_000_000, tau in -1.0..18.0f64) {
        let (ds, a, _) = random_instance(seed);
        let s = Subset::from_indices(&ds, a.clone());
        let m = Model::new(a);
        for (cmp, what) in [
            (ThresholdCmp::Le, "≤"),
            (ThresholdCmp::Lt, "<"),
            (ThresholdCmp::Gt, ">"),
            (ThresholdCmp::Ge, "≥"),
        ] {
            let fast = s.filter_cmp(&ds, 0, tau, cmp);
            let model = m.filter(|r| {
                let v = ds.value(r, 0);
                match cmp {
                    ThresholdCmp::Le => v <= tau,
                    ThresholdCmp::Lt => v < tau,
                    ThresholdCmp::Gt => v > tau,
                    ThresholdCmp::Ge => v >= tau,
                }
            });
            assert_equiv(&ds, &fast, &model, what);
            // Exact observed values as thresholds hit the boundary cases.
            for exact in [0.0, 7.0, 15.0] {
                let fast = s.filter_cmp(&ds, 0, exact, cmp);
                let model = m.filter(|r| {
                    let v = ds.value(r, 0);
                    match cmp {
                        ThresholdCmp::Le => v <= exact,
                        ThresholdCmp::Lt => v < exact,
                        ThresholdCmp::Gt => v > exact,
                        ThresholdCmp::Ge => v >= exact,
                    }
                });
                assert_equiv(&ds, &fast, &model, what);
            }
        }
    }
}
