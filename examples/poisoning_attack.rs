//! Decision trees really are brittle: find concrete poisoning attacks.
//!
//! ```text
//! cargo run --release --example poisoning_attack
//! ```
//!
//! Certification only matters because attacks exist. This example plays
//! the attacker on the Mammographic-Masses-like benchmark: for each test
//! patient it greedily removes training records until the prediction
//! flips, reporting how few "malicious contributions" suffice. It then
//! cross-checks the sandwich: inputs the prover certifies at budget `n`
//! are exactly the ones no ≤ n-removal attack can touch.

use antidote::prelude::*;

fn main() {
    let (train, test) = Benchmark::Mammographic.load(Scale::Small, 0);
    let depth = 2;
    let budget = 24;

    println!(
        "Mammographic-like dataset: {} train / {} test, depth {depth}, attack budget {budget}",
        train.len(),
        test.len()
    );

    let patients = 15.min(test.len());
    let certifier = Certifier::new(&train)
        .depth(depth)
        .domain(DomainKind::Disjuncts)
        .timeout(std::time::Duration::from_secs(5));

    let mut attacked = 0;
    let mut sandwich_ok = true;
    println!(
        "\n{:>8} {:>10} {:>14} {:>18}",
        "patient", "label", "attack", "certified_at"
    );
    for i in 0..patients as u32 {
        let x = test.row_values(i);
        let attack = greedy_attack(&train, &x, depth, budget);
        let attack_str = if attack.succeeded() {
            attacked += 1;
            format!("{} removals", attack.removals())
        } else {
            "resisted".to_string()
        };
        // Largest doubling-ladder budget the prover certifies.
        let mut certified_at = None;
        for n in [1usize, 2, 4, 8, 16, 32] {
            if certifier.certify(&x, n).is_robust() {
                certified_at = Some(n);
            }
        }
        // Sandwich: a successful k-attack forbids certification at ≥ k.
        if let (true, Some(c)) = (attack.succeeded(), certified_at) {
            if c >= attack.removals() {
                sandwich_ok = false;
            }
        }
        println!(
            "{:>8} {:>10} {:>14} {:>18}",
            i,
            train.schema().classes()[attack.reference_label as usize],
            attack_str,
            certified_at.map_or("never".into(), |n| format!("n = {n}")),
        );
    }
    println!(
        "\n{attacked}/{patients} patients attackable with <= {budget} removals \
         ({:.0}% of the training set)",
        100.0 * budget as f64 / train.len() as f64
    );
    println!(
        "soundness sandwich (attack success at k ⇒ no certificate at n >= k): {}",
        if sandwich_ok {
            "holds"
        } else {
            "VIOLATED — this would be a bug"
        }
    );
}
