//! Quickstart: learn a tree, classify, and *prove* the classification
//! robust to data poisoning.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's Figure 2 running example first (concrete semantics),
//! then certifies robustness on a larger synthetic dataset where the
//! abstraction has room to work.

use antidote::data::synth::{figure2, gaussian_blobs, BlobSpec};
use antidote::prelude::*;

fn main() {
    // ----- Part 1: the paper's Figure 2 example, concretely -----
    let ds = figure2();
    let full = Subset::full(&ds);

    let tree = learn_tree(&ds, &full, 1);
    println!("Figure 2 dataset: 13 points, depth-1 tree:");
    for trace in tree.traces() {
        let path: Vec<String> = trace
            .predicates
            .iter()
            .map(|(p, pol)| {
                if *pol {
                    format!("{p}")
                } else {
                    format!("!({p})")
                }
            })
            .collect();
        println!(
            "  trace [{}] -> {}",
            path.join(" & "),
            ds.schema().classes()[trace.label as usize]
        );
    }

    // DTrace builds only the trace an input actually takes (§3.3).
    let r = dtrace(&ds, &full, &[5.0], 1);
    println!(
        "DTrace(T, 5): label = {} with cprob = {:?}",
        ds.schema().classes()[r.label as usize],
        r.probs
    );

    // ----- Part 2: certification on a dataset with real margins -----
    let blobs = gaussian_blobs(
        &BlobSpec {
            means: vec![vec![0.0], vec![10.0]],
            stds: vec![vec![1.0], vec![1.0]],
            per_class: 100,
            quantum: Some(0.1),
        },
        7,
    );
    println!("\nTwo-class blobs, 200 training rows. Certifying x = 0.5:");
    let certifier = Certifier::new(&blobs)
        .depth(1)
        .domain(DomainKind::Disjuncts);
    for n in [1usize, 4, 16, 32, 64] {
        let out = certifier.certify(&[0.5], n);
        println!(
            "  n = {n:>3} ({:>4.1}% of training set): {:?} in {:?}",
            100.0 * n as f64 / blobs.len() as f64,
            out.verdict,
            out.stats.elapsed
        );
    }

    // The proof at n = 16 covers every one of the Σ C(200, i) poisoned
    // training sets — about 10^24 of them — without enumerating any.
    let covered = antidote::baselines::log10_count(blobs.len(), 16);
    println!("a proof at n = 16 covers ~10^{covered:.0} possible training sets");
}
