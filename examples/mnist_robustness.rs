//! MNIST-1-7 robustness certification — the paper's headline experiment
//! (§2, §6.2), scaled to run in seconds.
//!
//! ```text
//! cargo run --release --example mnist_robustness
//! ```
//!
//! Certifies a batch of test digits under growing poisoning budgets with
//! both abstract domains, mirroring the setting of Figure 7 (binary
//! pixels). The paper's involved example proves one digit robust for up to
//! 192 malicious training points — equivalent to training on ~10^432
//! datasets; we print the equivalent count for each certified budget.

use antidote::baselines::log10_count;
use antidote::prelude::*;

fn main() {
    let (train, test) = Benchmark::Mnist17Binary.load(Scale::Small, 0);
    println!(
        "MNIST-1-7-Binary stand-in: {} train x {} pixels, {} test digits",
        train.len(),
        train.n_features(),
        test.len()
    );

    let depth = 2;
    let digits = 10.min(test.len());
    for domain in [DomainKind::Box, DomainKind::Disjuncts] {
        let certifier = Certifier::new(&train)
            .depth(depth)
            .domain(domain)
            .timeout(std::time::Duration::from_secs(10));
        println!("\n--- domain: {:?}, depth {depth} ---", domain);
        for n in [1usize, 8, 16, 32, 64] {
            let mut verified = 0;
            let mut total_ms = 0.0;
            for i in 0..digits as u32 {
                let out = certifier.certify(&test.row_values(i), n);
                if out.is_robust() {
                    verified += 1;
                }
                total_ms += out.stats.elapsed.as_secs_f64() * 1e3;
            }
            println!(
                "  n = {n:>3}: {verified:>2}/{digits} digits proven robust \
                 (avg {:.1} ms; each proof covers ~10^{:.0} datasets)",
                total_ms / digits as f64,
                log10_count(train.len(), n)
            );
        }
    }

    // Render one certified digit as ASCII art, like the paper's Figure 3.
    let x = test.row_values(0);
    let label = Certifier::new(&train).depth(depth).certify(&x, 16);
    println!(
        "\ntest digit 0 (proven {:?} at n = 16, classified '{}'):",
        label.verdict,
        train.schema().classes()[label.label as usize]
    );
    for row in 0..28 {
        let line: String = (0..28)
            .map(|col| if x[row * 28 + col] > 0.5 { '#' } else { '.' })
            .collect();
        println!("  {line}");
    }
}
