//! Certified tumor screening — the motivating scenario of data curation.
//!
//! ```text
//! cargo run --release --example medical_screening
//! ```
//!
//! A hospital trains a decision tree on a crowd-curated diagnostic dataset
//! (the WDBC-like benchmark). Before trusting an individual diagnosis, it
//! asks Antidote: *even if up to `n` of the training records were
//! contributed maliciously, would this patient's prediction be the same?*
//! Diagnoses that certify get a robustness certificate; the rest are
//! flagged for manual review.

use antidote::prelude::*;
use antidote::tree::eval::accuracy;

fn main() {
    let (train, test) = Benchmark::Wdbc.load(Scale::Small, 0);
    let depth = 2;
    let tree = learn_tree(&train, &Subset::full(&train), depth);
    println!(
        "WDBC-like screening model: {} train / {} test, depth {depth}, accuracy {:.1}%",
        train.len(),
        test.len(),
        100.0 * accuracy(&tree, &test)
    );

    let suspected_poison = 2; // two suspect records among 456
    let certifier = Certifier::new(&train)
        .depth(depth)
        .domain(DomainKind::Disjuncts)
        .timeout(std::time::Duration::from_secs(10));

    let mut certified = 0;
    let mut flagged = Vec::new();
    let patients = test.len().min(20);
    for i in 0..patients as u32 {
        let x = test.row_values(i);
        let out = certifier.certify(&x, suspected_poison);
        if out.is_robust() {
            certified += 1;
        } else {
            flagged.push((i, out.verdict));
        }
    }
    println!(
        "\nwith up to {suspected_poison} poisoned records assumed: \
         {certified}/{patients} diagnoses carry a robustness certificate"
    );
    println!("flagged for manual review: {} patients", flagged.len());
    for (i, verdict) in flagged.iter().take(5) {
        let x = test.row_values(*i);
        let label = tree.predict(&x);
        println!(
            "  patient {i}: predicted {}, verdict {:?}",
            train.schema().classes()[label as usize],
            verdict
        );
    }

    // For one flagged patient, look for an actual attack — is the flag a
    // prover imprecision or a real vulnerability?
    if let Some((i, _)) = flagged.first() {
        let x = test.row_values(*i);
        let attack = antidote::baselines::greedy_attack(&train, &x, depth, suspected_poison);
        if attack.succeeded() {
            println!(
                "\npatient {i} is genuinely vulnerable: removing {} specific \
                 training records flips the diagnosis to {}",
                attack.removals(),
                train.schema().classes()[attack.final_label as usize]
            );
        } else {
            println!(
                "\nno greedy attack within budget flips patient {i} — the flag \
                 reflects prover imprecision (or a subtler attack)"
            );
        }
    }
}
