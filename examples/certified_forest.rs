//! Ensemble certification: random forests inherit poisoning-robustness
//! certificates from their trees.
//!
//! ```text
//! cargo run --release --example certified_forest
//! ```
//!
//! The paper motivates decision trees because they power random forests
//! (§1). This example trains a random-subspace forest on the WDBC-like
//! screening data, then composes per-tree Antidote certificates into an
//! ensemble certificate: if a strict majority of trees provably keep
//! voting the reference class under any `n`-element poisoning, the
//! forest's diagnosis provably cannot change.

use antidote::core::ensemble::{certify_forest, EnsembleConfig};
use antidote::prelude::*;
use antidote::tree::forest::{learn_forest, ForestConfig};
use antidote::tree::viz::render_text;

fn main() {
    let (train, test) = Benchmark::Wdbc.load(Scale::Small, 0);
    let fcfg = ForestConfig {
        n_trees: 7,
        features_per_tree: 6,
        max_depth: 1,
        seed: 0,
    };
    let forest = learn_forest(&train, &fcfg);
    println!(
        "random-subspace forest: {} trees x depth {} over 6-of-30 features; accuracy {:.1}%",
        forest.len(),
        fcfg.max_depth,
        100.0 * forest.accuracy(&test)
    );

    // Show one member for interpretability.
    let member = &forest.members()[0];
    println!(
        "\nfirst member (features {:?}):\n{}",
        member.features,
        render_text(
            &member.tree,
            train.select_features(&member.features).schema()
        )
    );

    let cfg = EnsembleConfig {
        depth: fcfg.max_depth,
        ..EnsembleConfig::default()
    };
    let patients = 10.min(test.len());
    for n in [1usize, 2, 4, 8] {
        let mut robust = 0;
        let mut avg_votes = 0usize;
        for i in 0..patients as u32 {
            let out = certify_forest(&train, &forest, &test.row_values(i), n, &cfg);
            robust += out.robust as usize;
            avg_votes += out.certified_votes;
        }
        println!(
            "n = {n:>2}: {robust:>2}/{patients} forest diagnoses certified \
             (avg {:.1}/{} certified tree votes)",
            avg_votes as f64 / patients as f64,
            forest.len()
        );
    }

    // Detail for one patient.
    let out = certify_forest(&train, &forest, &test.row_values(0), 2, &cfg);
    println!(
        "\npatient 0 at n = 2: robust = {}, label = {}, certified votes {}/{} in {:?}",
        out.robust,
        train.schema().classes()[out.label as usize],
        out.certified_votes,
        out.total_trees,
        out.elapsed
    );
    for (i, m) in out.members.iter().enumerate() {
        println!(
            "  tree {i}: votes {:<9} verdict {:?}",
            train.schema().classes()[m.vote as usize],
            m.verdict
        );
    }
}
