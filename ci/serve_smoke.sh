#!/usr/bin/env sh
# Service-mode smoke: pipe the canned JSONL request script through
# `antidote serve` and hold the full response transcript to the
# committed golden byte-for-byte. Responses carry no timings and the
# script runs sequentially (--threads 1), so the transcript is
# host-independent.
#
#   ci/serve_smoke.sh          check mode (CI): diff against the golden
#   ci/serve_smoke.sh --bless  regenerate ci/serve_smoke.golden in place
#
# Protocol-extending changes (a new op, new fields in the deterministic
# metrics subset) change the transcript; bless mode updates the golden
# mechanically so the new bytes land in the same commit for review.
# Exits non-zero on a transcript mismatch or a missing binary.
set -eu

cd "$(dirname "$0")/.."

BIN=target/release/antidote
if [ ! -x "$BIN" ]; then
    echo "serve_smoke: $BIN not built (run: cargo build --release)" >&2
    exit 2
fi

case "${1:-}" in
--bless)
    "$BIN" serve --threads 1 < ci/serve_smoke.jsonl > ci/serve_smoke.golden
    echo "serve_smoke: blessed ci/serve_smoke.golden ($(wc -l < ci/serve_smoke.golden | tr -d ' ') lines)"
    ;;
'')
    "$BIN" serve --threads 1 < ci/serve_smoke.jsonl > /tmp/serve_smoke.out
    diff ci/serve_smoke.golden /tmp/serve_smoke.out
    echo "serve_smoke: OK — transcript matches the committed golden"
    ;;
*)
    echo "usage: ci/serve_smoke.sh [--bless]" >&2
    exit 2
    ;;
esac
