#!/usr/bin/env sh
# Service-mode smoke: pipe the canned JSONL request script through
# `antidote serve` in BOTH loop modes — the pipelined default and
# --no-pipeline — and hold each full response transcript to the one
# committed golden byte-for-byte (the two loops are contractually
# observationally identical). Responses carry no timings and the script
# runs sequentially (--threads 1), so the transcript is
# host-independent.
#
#   ci/serve_smoke.sh          check mode (CI): diff both modes' output
#   ci/serve_smoke.sh --bless  regenerate ci/serve_smoke.golden in place
#
# Protocol-extending changes (a new op, new fields in the deterministic
# metrics subset) change the transcript; bless mode updates the golden
# mechanically so the new bytes land in the same commit for review —
# and still cross-checks the pipelined transcript against it, so a
# bless can never paper over a loop-mode divergence.
# Exits non-zero on a transcript mismatch or a missing binary.
set -eu

cd "$(dirname "$0")/.."

BIN=target/release/antidote
if [ ! -x "$BIN" ]; then
    echo "serve_smoke: $BIN not built (run: cargo build --release)" >&2
    exit 2
fi

case "${1:-}" in
--bless)
    "$BIN" serve --threads 1 --no-pipeline < ci/serve_smoke.jsonl > ci/serve_smoke.golden
    "$BIN" serve --threads 1 < ci/serve_smoke.jsonl > /tmp/serve_smoke.pipelined.out
    diff ci/serve_smoke.golden /tmp/serve_smoke.pipelined.out
    echo "serve_smoke: blessed ci/serve_smoke.golden ($(wc -l < ci/serve_smoke.golden | tr -d ' ') lines; pipelined loop agrees)"
    ;;
'')
    "$BIN" serve --threads 1 --no-pipeline < ci/serve_smoke.jsonl > /tmp/serve_smoke.seq.out
    diff ci/serve_smoke.golden /tmp/serve_smoke.seq.out
    "$BIN" serve --threads 1 < ci/serve_smoke.jsonl > /tmp/serve_smoke.pipelined.out
    diff ci/serve_smoke.golden /tmp/serve_smoke.pipelined.out
    echo "serve_smoke: OK — both loop modes match the committed golden"
    ;;
*)
    echo "usage: ci/serve_smoke.sh [--bless]" >&2
    exit 2
    ;;
esac
