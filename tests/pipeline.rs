//! Whole-pipeline integration: benchmark loading → learning → accuracy →
//! sweeping → CSV round trips.

use antidote::core::{sweep, SweepConfig};
use antidote::prelude::*;
use antidote::tree::eval::accuracy;
use std::time::Duration;

/// Table 1 shape: every benchmark learns to a sensible accuracy band at
/// depth ≤ 4 on its synthetic stand-in.
#[test]
fn table1_accuracy_bands() {
    // (benchmark, depth-2 floor). Paper values: Iris 90, Mammo 83.1,
    // WDBC 92, MNIST-binary 97.4, MNIST-real 97.6 — the stand-ins must
    // land in the same neighbourhood.
    let bands = [
        (Benchmark::Iris, 0.85),
        (Benchmark::Mammographic, 0.75),
        (Benchmark::Wdbc, 0.88),
    ];
    for (bench, floor) in bands {
        let (train, test) = bench.load(Scale::Small, 0);
        let tree = learn_tree(&train, &Subset::full(&train), 2);
        let acc = accuracy(&tree, &test);
        assert!(
            acc >= floor,
            "{bench}: depth-2 accuracy {acc:.3} below {floor}"
        );
    }
    // MNIST-like variants with a reduced training set for test speed.
    let train =
        antidote::data::synth::mnist17_like(antidote::data::synth::MnistVariant::Binary, 600, 0);
    let test =
        antidote::data::synth::mnist17_like(antidote::data::synth::MnistVariant::Binary, 200, 1);
    let tree = learn_tree(&train, &Subset::full(&train), 2);
    assert!(accuracy(&tree, &test) >= 0.93);
}

/// The iris depth-1 quirk (paper footnote 10): the best first split
/// separates Setosa, leaving a leaf that is an even Versicolour/Virginica
/// mixture, so depth-1 robustness certification over that leaf is hopeless
/// while depth 2 recovers it.
#[test]
fn iris_footnote_10_quirk() {
    let (train, _) = Benchmark::Iris.load(Scale::Small, 0);
    let tree = learn_tree(&train, &Subset::full(&train), 1);
    let traces = tree.traces();
    assert_eq!(traces.len(), 2);
    // One leaf is (almost) pure Setosa; the other mixes the two remaining
    // classes nearly evenly.
    let leaf_probs: Vec<&[f64]> = tree
        .nodes()
        .iter()
        .filter_map(|n| match n {
            antidote::tree::learner::Node::Leaf { probs, .. } => Some(probs.as_slice()),
            _ => None,
        })
        .collect();
    let mixed = leaf_probs
        .iter()
        .find(|p| p[0] < 0.05)
        .expect("a non-Setosa leaf exists");
    assert!(
        (mixed[1] - mixed[2]).abs() < 0.15,
        "leaf should be a near-even split: {mixed:?}"
    );

    // Certification at depth 2 proves strictly more test inputs than at
    // depth 1 for a small budget.
    let (train, test) = Benchmark::Iris.load(Scale::Small, 0);
    let count = |depth: usize| {
        let c = Certifier::new(&train)
            .depth(depth)
            .domain(DomainKind::Disjuncts);
        (0..test.len() as u32)
            .filter(|&i| c.certify(&test.row_values(i), 1).is_robust())
            .count()
    };
    let (d1, d2) = (count(1), count(2));
    assert!(
        d2 > d1,
        "depth 2 ({d2}) should certify more than depth 1 ({d1})"
    );
}

/// An end-to-end sweep over a real benchmark produces the monotone ladder
/// the figures plot.
#[test]
fn sweep_over_mammographic() {
    let (train, test) = Benchmark::Mammographic.load(Scale::Small, 0);
    let xs: Vec<Vec<f64>> = (0..20u32).map(|r| test.row_values(r)).collect();
    let cfg = SweepConfig {
        depth: 1,
        domain: DomainKind::Disjuncts,
        timeout: Some(Duration::from_secs(5)),
        ..SweepConfig::default()
    };
    let pts = sweep(&train, &xs, &cfg);
    assert!(!pts.is_empty());
    assert!(
        pts[0].verified > 0,
        "some mammographic input should certify at n = 1"
    );
    for w in pts.windows(2) {
        assert!(w[0].n < w[1].n && w[0].verified >= w[1].verified);
    }
}

/// CSV round trips preserve certification results exactly.
#[test]
fn csv_round_trip_preserves_verdicts() {
    let ds = antidote::data::synth::gaussian_blobs(
        &antidote::data::synth::BlobSpec {
            means: vec![vec![0.0], vec![10.0]],
            stds: vec![vec![1.0], vec![1.0]],
            per_class: 50,
            quantum: Some(0.1),
        },
        5,
    );
    let mut buf = Vec::new();
    antidote::data::csv::write_csv(&ds, &mut buf).unwrap();
    let back = antidote::data::csv::read_csv(buf.as_slice()).unwrap();
    for x in [[0.5], [9.5], [5.0]] {
        for n in [1usize, 8] {
            let a = Certifier::new(&ds).depth(1).certify(&x, n);
            let b = Certifier::new(&back).depth(1).certify(&x, n);
            assert_eq!(a.verdict, b.verdict);
            // Class ids may be renumbered by CSV loading; compare names.
            assert_eq!(
                ds.schema().classes()[a.label as usize],
                back.schema().classes()[b.label as usize]
            );
        }
    }
}

/// Determinism: the full pipeline gives identical results across runs.
#[test]
fn pipeline_is_deterministic() {
    let (train, test) = Benchmark::Iris.load(Scale::Small, 7);
    let run = || {
        let c = Certifier::new(&train)
            .depth(2)
            .domain(DomainKind::Disjuncts);
        (0..test.len() as u32)
            .map(|i| c.certify(&test.row_values(i), 2).verdict)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
