//! End-to-end soundness: the abstract learner versus exhaustive ground
//! truth on small random instances.
//!
//! These are the repository's most important tests. They check, across
//! random datasets, inputs, depths, budgets, and all three domains:
//!
//! 1. **Theorem 4.11** — every concrete run's final training-set fragment
//!    is covered by some terminal abstract state of `DTrace#`;
//! 2. **Corollary 4.12** — whenever the prover answers *Robust*, exact
//!    enumeration over `Δn(T)` confirms that no removal set changes the
//!    prediction (and conversely, any enumeration counterexample forbids
//!    a Robust verdict);
//! 3. the greedy attack can never break a certified input.

use antidote::core::engine::ExecContext;
use antidote::core::learner::{run_abstract, DomainKind};
use antidote::data::{ClassId, Dataset, Schema, Subset};
use antidote::domains::{AbstractSet, CprobTransformer};
use antidote::prelude::*;
use antidote::tree::dtrace::dtrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random dataset: ≤ 10 rows, 1–2 features, 2–3 classes, values on
/// a small integer grid so ties and duplicate values are common (the nasty
/// cases for tie-breaking and trivial-split handling).
fn random_dataset(rng: &mut StdRng) -> Dataset {
    let len = rng.random_range(2..=10usize);
    let d = rng.random_range(1..=2usize);
    let k = rng.random_range(2..=3usize);
    let rows: Vec<(Vec<f64>, ClassId)> = (0..len)
        .map(|_| {
            (
                (0..d).map(|_| rng.random_range(0..5) as f64).collect(),
                rng.random_range(0..k) as ClassId,
            )
        })
        .collect();
    Dataset::from_rows(Schema::real(d, k), &rows).expect("valid random rows")
}

/// Every subset of `0..len` whose complement has size ≤ n, as index lists.
fn all_concretizations(len: usize, n: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for mask in 0u32..(1 << len) {
        let kept: Vec<u32> = (0..len as u32).filter(|i| mask & (1 << i) != 0).collect();
        if len - kept.len() <= n && !kept.is_empty() {
            out.push(kept);
        }
    }
    out
}

const DOMAINS: [DomainKind; 3] = [
    DomainKind::Box,
    DomainKind::Disjuncts,
    DomainKind::Hybrid { max_disjuncts: 3 },
];

/// Theorem 4.11: for all T' ∈ γ(⟨T,n⟩), the final concrete fragment of
/// DTrace(T', x) lies in γ of some terminal abstract state.
#[test]
fn theorem_4_11_terminal_coverage() {
    let mut rng = StdRng::seed_from_u64(411);
    for trial in 0..120 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(0..ds.len());
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        for domain in DOMAINS {
            let out = run_abstract(
                &ds,
                AbstractSet::full(&ds, n),
                &x,
                depth,
                domain,
                CprobTransformer::Optimal,
                true,
                true,
                true,
                &ExecContext::sequential(),
            );
            assert!(out.aborted.is_none());
            for kept in all_concretizations(ds.len(), n) {
                let t_prime = Subset::from_indices(&ds, kept);
                let conc = dtrace(&ds, &t_prime, &x, depth);
                let covered = out.terminals.iter().any(|t| t.concretizes(&conc.final_set));
                assert!(
                    covered,
                    "trial {trial} {domain:?}: concrete final fragment {:?} \
                     not covered by any terminal (|T|={}, n={n}, depth={depth})",
                    conc.final_set.indices(),
                    ds.len(),
                );
            }
        }
    }
}

/// Corollary 4.12 + exact enumeration: Robust verdicts are never wrong.
#[test]
fn robust_verdicts_match_enumeration() {
    let mut rng = StdRng::seed_from_u64(412);
    let mut proven = 0usize;
    for _ in 0..150 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(0..ds.len());
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let truth = enumerate_robustness(&ds, &x, depth, n, 1 << 22);
        for domain in DOMAINS {
            let out = Certifier::new(&ds)
                .depth(depth)
                .domain(domain)
                .certify(&x, n);
            if out.is_robust() {
                proven += 1;
                assert!(
                    truth.is_robust(),
                    "{domain:?} claimed robust but enumeration found {truth:?} \
                     (|T|={}, n={n}, depth={depth}, x={x:?})",
                    ds.len(),
                );
            }
        }
    }
    // The prover must actually prove something across 450 attempts,
    // otherwise this test is vacuous.
    assert!(
        proven > 50,
        "only {proven} robust verdicts; prover too weak"
    );
}

/// The greedy attack is a concrete counterexample generator: it can never
/// succeed at a budget the prover certified.
#[test]
fn attacks_never_break_certificates() {
    let mut rng = StdRng::seed_from_u64(413);
    for _ in 0..100 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(1..ds.len());
        let depth = rng.random_range(1..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let attack = greedy_attack(&ds, &x, depth, n);
        if attack.succeeded() {
            for domain in DOMAINS {
                let out = Certifier::new(&ds)
                    .depth(depth)
                    .domain(domain)
                    .certify(&x, attack.removals());
                assert!(
                    !out.is_robust(),
                    "{domain:?} certified n={} but attack removed {:?}",
                    attack.removals(),
                    attack.removed,
                );
            }
        }
    }
}

/// The label-flip extension's Robust verdicts are never wrong: exact
/// enumeration of every ≤ n-flip relabeling confirms them.
#[test]
fn flip_verdicts_match_flip_enumeration() {
    use antidote::baselines::enumerate_flip_robustness;
    use antidote::core::flip::certify_label_flips;

    let mut rng = StdRng::seed_from_u64(415);
    let mut proven = 0usize;
    for _ in 0..120 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(0..=2usize.min(ds.len()));
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let out = certify_label_flips(&ds, &x, depth, n, &ExecContext::sequential());
        if out.is_robust() {
            proven += 1;
            let truth = enumerate_flip_robustness(&ds, &x, depth, n, 1 << 22);
            assert!(
                truth.is_robust(),
                "flip prover claimed robust but enumeration found {truth:?} \
                 (|T|={}, n={n}, depth={depth}, x={x:?})",
                ds.len(),
            );
        }
    }
    assert!(
        proven > 20,
        "only {proven} flip certificates; prover too weak"
    );
}

/// Brute-force soundness oracle for the *cached* certification path: on
/// tiny datasets (≤ 8 rows) and budgets `n ≤ 3`, every `Robust` verdict a
/// [`CertCache`]-backed probe returns — whether freshly derived, resumed
/// incrementally, or answered by a monotone/witness short-circuit — is
/// checked against exhaustive enumeration of all ≤ n-row removals with
/// concrete retraining. Probes run in a shuffled budget order so the
/// interval short-circuits actually fire; every answer must also equal
/// the fresh certifier's.
#[test]
fn cached_robust_verdicts_survive_the_brute_force_oracle() {
    use antidote::core::CertCache;
    use rand::seq::SliceRandom;

    let mut rng = StdRng::seed_from_u64(416);
    let mut proven = 0usize;
    let mut shortcircuits = 0u64;
    for trial in 0..120 {
        let ds = {
            // Cap at 8 rows so the oracle's 2^|T| enumeration stays tiny.
            let mut ds = random_dataset(&mut rng);
            while ds.len() > 8 {
                ds = random_dataset(&mut rng);
            }
            ds
        };
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let mut budgets: Vec<usize> = (0..=3.min(ds.len() - 1)).collect();
        budgets.shuffle(&mut rng);
        for domain in DOMAINS {
            // Hybrid merge order is not provably monotone in n, so its
            // interval short-circuits are exercised by the in-order
            // ladder only (matching how the sweep probes it).
            let mut order = budgets.clone();
            if matches!(domain, DomainKind::Hybrid { .. }) {
                order.sort_unstable();
            }
            let certifier = Certifier::new(&ds).depth(depth).domain(domain);
            let cache = CertCache::new(1);
            let ctx = ExecContext::sequential();
            for &n in &order {
                let out = certifier.certify_cached(&x, n, 0, &cache, &ctx).unwrap();
                assert_eq!(
                    out.verdict,
                    certifier.certify(&x, n).verdict,
                    "trial {trial} {domain:?}: cached diverged at n={n} (order {order:?})",
                );
                if !out.is_robust() {
                    continue;
                }
                proven += 1;
                let reference = dtrace(&ds, &Subset::full(&ds), &x, depth).label;
                for kept in all_concretizations(ds.len(), n) {
                    let poisoned = Subset::from_indices(&ds, kept);
                    let retrained = dtrace(&ds, &poisoned, &x, depth).label;
                    assert_eq!(
                        retrained,
                        reference,
                        "trial {trial} {domain:?}: cached Robust at n={n} contradicted by \
                         removing {:?} (|T|={}, depth={depth})",
                        poisoned.indices(),
                        ds.len(),
                    );
                }
            }
            shortcircuits += ctx.metrics().cache_shortcircuits();
        }
    }
    assert!(
        proven > 80,
        "only {proven} robust verdicts; oracle is vacuous"
    );
    assert!(
        shortcircuits > 50,
        "only {shortcircuits} short-circuits; the cached path was barely exercised"
    );
}

/// The cached sweep's per-rung `verified` counts agree with fresh
/// per-point certification on tiny datasets — the ladder-level view of
/// the oracle above, including the witness search the sweep triggers
/// before binary-search refinement.
#[test]
fn cached_sweep_rungs_match_fresh_certification() {
    use antidote::core::{sweep_in, SweepConfig};

    let mut rng = StdRng::seed_from_u64(417);
    for _ in 0..40 {
        let ds = random_dataset(&mut rng);
        let depth = rng.random_range(0..=2usize);
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                (0..ds.n_features())
                    .map(|_| rng.random_range(0..5) as f64)
                    .collect()
            })
            .collect();
        for domain in DOMAINS {
            let cfg = SweepConfig {
                depth,
                domain,
                timeout: None,
                max_live_disjuncts: None,
                threads: 1,
                max_n: Some(3.min(ds.len())),
                ..SweepConfig::default()
            };
            let ctx = ExecContext::sequential();
            let ladder = sweep_in(&ds, &xs, &cfg, &ctx);
            let certifier = Certifier::new(&ds).depth(depth).domain(domain);
            // Survivor pools are implied by fresh per-point frontiers.
            let mut survivors: Vec<usize> = (0..xs.len()).collect();
            for p in &ladder {
                let fresh_verified = survivors
                    .iter()
                    .filter(|&&i| certifier.certify(&xs[i], p.n).is_robust())
                    .count();
                assert!(
                    p.verified <= p.attempted,
                    "{domain:?}: malformed rung {p:?}"
                );
                if p.attempted == survivors.len() {
                    // A full-pool rung: the cached count must equal fresh
                    // per-point certification exactly.
                    assert_eq!(
                        p.verified, fresh_verified,
                        "{domain:?} at n={}: cached sweep diverged from fresh \
                         certification",
                        p.n,
                    );
                    survivors.retain(|&i| certifier.certify(&xs[i], p.n).is_robust());
                } else {
                    // A binary-search probe over a sub-pool: its verified
                    // count is bounded by the fresh count over the pool.
                    assert!(
                        p.verified <= fresh_verified,
                        "{domain:?} at n={}: cached sweep verified {} but fresh \
                         certification only verifies {fresh_verified}",
                        p.n,
                        p.verified,
                    );
                }
            }
        }
    }
}

/// The probe scheduler's degradation contract (DESIGN.md §13): when a
/// global budget or deadline binds, the sweep may stop early — but every
/// robustness claim that survives in the cache must still be backed by
/// the brute-force oracle, and degraded points must degrade to an honest
/// `Unknown` interval, never to an unearned `Robust`.
#[test]
fn binding_budgets_degrade_to_sound_unknowns() {
    use antidote::core::{sweep_cached, CertCache, SweepConfig};

    let mut rng = StdRng::seed_from_u64(418);
    let mut proven = 0usize;
    let mut deferred = 0u64;
    for trial in 0..60 {
        let ds = {
            // Cap at 8 rows so the oracle's 2^|T| enumeration stays tiny.
            let mut ds = random_dataset(&mut rng);
            while ds.len() > 8 {
                ds = random_dataset(&mut rng);
            }
            ds
        };
        let depth = rng.random_range(0..=2usize);
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                (0..ds.n_features())
                    .map(|_| rng.random_range(0..5) as f64)
                    .collect()
            })
            .collect();
        for domain in DOMAINS {
            let cfg = SweepConfig {
                depth,
                domain,
                timeout: None,
                threads: 1,
                max_n: Some(3.min(ds.len())),
                // Tight enough to bind on most trials: the unbounded
                // ladder issues up to 4 probes per rung.
                probe_budget: Some(rng.random_range(1..=6)),
                ..SweepConfig::default()
            };
            let cache = CertCache::for_dataset(&ds, xs.len());
            let ctx = ExecContext::sequential();
            let ladder = sweep_cached(&ds, &xs, &cfg, &ctx, &cache);
            deferred += ctx.metrics().probes_deferred();
            let certifier = Certifier::new(&ds).depth(depth).domain(domain);
            // Oracle A — point intervals: every `max_robust = r` claim
            // left in the cache after the truncated sweep must survive
            // exhaustive retraining over all ≤ r removals. (Unknown is
            // incompleteness, not a claim, so only the robust side is
            // oracle-checkable.)
            for (i, x) in xs.iter().enumerate() {
                let (max_robust, _) = cache.verdict_interval(i);
                let Some(r) = max_robust else { continue };
                proven += 1;
                let reference = dtrace(&ds, &Subset::full(&ds), x, depth).label;
                for kept in all_concretizations(ds.len(), r) {
                    let poisoned = Subset::from_indices(&ds, kept);
                    let retrained = dtrace(&ds, &poisoned, x, depth).label;
                    assert_eq!(
                        retrained,
                        reference,
                        "trial {trial} {domain:?}: budgeted sweep claims point {i} robust \
                         at n={r} but removing {:?} flips it (|T|={}, depth={depth})",
                        poisoned.indices(),
                        ds.len(),
                    );
                }
            }
            // Oracle B — rung aggregates: a truncated rung probes a
            // priority-ordered sub-pool, so its verified count is
            // bounded by fresh certification over the whole point set.
            for p in &ladder {
                let fresh_all = xs
                    .iter()
                    .filter(|x| certifier.certify(x, p.n).is_robust())
                    .count();
                assert!(
                    p.verified <= p.attempted && p.verified <= fresh_all,
                    "trial {trial} {domain:?} at n={}: truncated rung claims {} \
                     verified but fresh certification allows at most {fresh_all}",
                    p.n,
                    p.verified,
                );
            }
        }
    }
    assert!(
        proven > 80,
        "only {proven} robust claims survived the budgeted sweeps; oracle is vacuous"
    );
    assert!(
        deferred > 60,
        "only {deferred} probes deferred; the budgets never actually bound"
    );
}

/// A shared wall-clock deadline is honored ladder-wide: the sweep never
/// overruns it by more than one probe's worth of work, and an
/// already-expired deadline degrades every point before the first probe
/// — no robustness claims, `Unknown` intervals across the board.
#[test]
fn binding_deadlines_are_honored_ladder_wide() {
    use antidote::core::{sweep_cached, CertCache, SweepConfig};
    use std::time::{Duration, Instant};

    let mut rng = StdRng::seed_from_u64(419);
    let ds = random_dataset(&mut rng);
    let xs: Vec<Vec<f64>> = (0..16)
        .map(|_| {
            (0..ds.n_features())
                .map(|_| rng.random_range(0..5) as f64)
                .collect()
        })
        .collect();
    let cfg = |deadline: Duration| SweepConfig {
        depth: 3,
        domain: DomainKind::Disjuncts,
        timeout: None,
        threads: 1,
        deadline: Some(deadline),
        ..SweepConfig::default()
    };

    // A modest but real deadline: the sweep must come back within it
    // plus at most one in-flight probe (tiny here — the slack is CI
    // scheduling noise, not probe time).
    let started = Instant::now();
    let cache = CertCache::for_dataset(&ds, xs.len());
    let ctx = ExecContext::sequential();
    sweep_cached(&ds, &xs, &cfg(Duration::from_millis(20)), &ctx, &cache);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(20) + Duration::from_millis(250),
        "deadline-bound sweep overran the global deadline: {elapsed:?}"
    );

    // An already-expired deadline: every point degrades before the
    // first probe fires, and nothing may claim robustness.
    let cache = CertCache::for_dataset(&ds, xs.len());
    let ctx = ExecContext::sequential();
    let ladder = sweep_cached(&ds, &xs, &cfg(Duration::ZERO), &ctx, &cache);
    assert!(
        ladder.iter().all(|p| p.attempted == 0 && p.verified == 0),
        "an expired deadline must not issue probes: {ladder:?}"
    );
    assert_eq!(
        ctx.metrics().deadline_degradations(),
        xs.len() as u64,
        "every point must be counted degraded exactly once"
    );
    for i in 0..xs.len() {
        assert_eq!(
            cache.verdict_interval(i),
            (None, None),
            "point {i}: degradation must leave an honest Unknown interval"
        );
    }
}

/// Every subset of `ds`'s *live* rows whose complement (within the live
/// set) has size ≤ n, as row-id lists — [`all_concretizations`] for a
/// mutated dataset, where live rows are no longer contiguous.
fn live_concretizations(ds: &Dataset, n: usize) -> Vec<Vec<u32>> {
    let live: Vec<u32> = ds.rows().collect();
    let mut out = Vec::new();
    for mask in 0u32..(1 << live.len()) {
        let kept: Vec<u32> = live
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &r)| r)
            .collect();
        if live.len() - kept.len() <= n && !kept.is_empty() {
            out.push(kept);
        }
    }
    out
}

/// Brute-force oracle for *transferred* certificates: on tiny datasets,
/// replay pure-removal mutation scripts (victims removed in shuffled
/// orders), carrying the cache across each epoch with
/// [`CertCache::transfer`], and check every `Robust` the cached probe
/// returns at the final epoch — including answers served straight from a
/// transferred bound before any trace exists — against exhaustive
/// enumeration of all ≤ n-row removals with concrete retraining on the
/// mutated (stable-slot) dataset.
#[test]
fn transferred_certificates_survive_the_brute_force_oracle() {
    use antidote::core::CertCache;
    use antidote::data::DatasetDelta;
    use rand::seq::SliceRandom;

    let mut rng = StdRng::seed_from_u64(418);
    let mut proven = 0usize;
    let mut transferred_answers = 0u64;
    for trial in 0..60 {
        let ds0 = {
            // ≥ 4 rows so two single-row removals leave a real dataset;
            // ≤ 8 so the oracle's 2^|T| enumeration stays tiny.
            let mut ds = random_dataset(&mut rng);
            while !(4..=8).contains(&ds.len()) {
                ds = random_dataset(&mut rng);
            }
            ds
        };
        let depth = rng.random_range(0..=2usize);
        let x: Vec<f64> = (0..ds0.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        // Two victims, removed one per epoch in a shuffled order.
        let mut victims: Vec<u32> = (0..ds0.len() as u32).collect();
        victims.shuffle(&mut rng);
        victims.truncate(2);
        for domain in DOMAINS {
            let ctx = ExecContext::sequential();
            let mut ds = ds0.clone();
            let mut cache = CertCache::for_dataset(&ds, 1);
            // Warm epoch 0 in ladder order, then replay the mutations.
            let certifier = Certifier::new(&ds).depth(depth).domain(domain);
            for n in 0..=3.min(ds.len() - 1) {
                certifier.certify_cached(&x, n, 0, &cache, &ctx).unwrap();
            }
            for &victim in &victims {
                let mut delta = DatasetDelta::new();
                delta.remove(victim);
                let (next, summary) = ds.apply_summarized(&delta).unwrap();
                cache = cache.transfer(&summary, &next, ctx.metrics());
                ds = next;
            }
            let mut budgets: Vec<usize> = (0..=3.min(ds.len() - 1)).collect();
            budgets.shuffle(&mut rng);
            if matches!(domain, DomainKind::Hybrid { .. }) {
                budgets.sort_unstable();
            }
            let certifier = Certifier::new(&ds).depth(depth).domain(domain);
            let reference = dtrace(&ds, &Subset::full(&ds), &x, depth).label;
            for &n in &budgets {
                if cache.transferred_lookup(0, n).is_some() {
                    transferred_answers += 1;
                }
                let out = certifier.certify_cached(&x, n, 0, &cache, &ctx).unwrap();
                assert_eq!(
                    out.label, reference,
                    "trial {trial} {domain:?}: reference label drifted after transfer"
                );
                if !out.is_robust() {
                    continue;
                }
                proven += 1;
                for kept in live_concretizations(&ds, n) {
                    let poisoned = Subset::from_indices(&ds, kept);
                    let retrained = dtrace(&ds, &poisoned, &x, depth).label;
                    assert_eq!(
                        retrained,
                        reference,
                        "trial {trial} {domain:?}: transferred Robust at n={n} (epoch {}) \
                         contradicted by removing {:?} (|T|={}, depth={depth}, victims {victims:?})",
                        ds.epoch(),
                        poisoned.indices(),
                        ds.len(),
                    );
                }
            }
        }
    }
    assert!(
        proven > 80,
        "only {proven} robust verdicts; the transfer oracle is vacuous"
    );
    // Bounds only survive two removals when epoch 0 proved Robust(m) with
    // m ≥ 2 + n, so transferred answers are a minority of probes on these
    // tiny instances — but they must actually occur.
    assert!(
        transferred_answers > 15,
        "only {transferred_answers} probes hit a transferred bound; transfer barely exercised"
    );
}

/// Appends and label flips must invalidate carried state: after a mixed
/// delta the cache holds no transferred answers, and whatever the cached
/// probes conclude on the mutated dataset is still pinned by the
/// brute-force oracle.
#[test]
fn mixed_deltas_invalidate_and_stay_sound() {
    use antidote::core::CertCache;
    use antidote::data::DatasetDelta;

    let mut rng = StdRng::seed_from_u64(420);
    let mut proven = 0usize;
    for trial in 0..40 {
        let ds0 = {
            let mut ds = random_dataset(&mut rng);
            while !(4..=7).contains(&ds.len()) {
                ds = random_dataset(&mut rng);
            }
            ds
        };
        let depth = rng.random_range(0..=2usize);
        let x: Vec<f64> = (0..ds0.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        // One delta mixing all three mutation kinds: remove row 0, flip
        // row 1 to a different class, append a fresh row.
        let flipped = (ds0.label(1) + 1) % ds0.n_classes() as ClassId;
        let appended: Vec<f64> = (0..ds0.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let mut delta = DatasetDelta::new();
        delta
            .remove(0)
            .flip_label(1, flipped)
            .append(&appended, rng.random_range(0..ds0.n_classes()) as ClassId);
        let (ds1, summary) = ds0.apply_summarized(&delta).unwrap();
        assert!(
            !summary.pure_removal(),
            "trial {trial}: delta must be mixed"
        );
        for domain in DOMAINS {
            let ctx = ExecContext::sequential();
            let cache0 = CertCache::for_dataset(&ds0, 1);
            let certifier0 = Certifier::new(&ds0).depth(depth).domain(domain);
            for n in 0..=2.min(ds0.len() - 1) {
                certifier0.certify_cached(&x, n, 0, &cache0, &ctx).unwrap();
            }
            let cache1 = cache0.transfer(&summary, &ds1, ctx.metrics());
            for n in 0..ds1.len() {
                assert!(
                    cache1.transferred_lookup(0, n).is_none(),
                    "trial {trial} {domain:?}: mixed delta left a transferred answer at n={n}"
                );
            }
            let certifier1 = Certifier::new(&ds1).depth(depth).domain(domain);
            let reference = dtrace(&ds1, &Subset::full(&ds1), &x, depth).label;
            for n in 0..=2.min(ds1.len() - 1) {
                let out = certifier1.certify_cached(&x, n, 0, &cache1, &ctx).unwrap();
                if !out.is_robust() {
                    continue;
                }
                proven += 1;
                for kept in live_concretizations(&ds1, n) {
                    let poisoned = Subset::from_indices(&ds1, kept);
                    assert_eq!(
                        dtrace(&ds1, &poisoned, &x, depth).label,
                        reference,
                        "trial {trial} {domain:?}: post-mutation Robust at n={n} \
                         contradicted by removing {:?}",
                        poisoned.indices(),
                    );
                }
            }
        }
    }
    assert!(
        proven > 30,
        "only {proven} robust verdicts; test is vacuous"
    );
}

/// A deterministic counterexample pinning *why* appends transfer nothing:
/// five 0-rows and one 1-row are provably `Robust(1)` at depth 0, but
/// after appending four 1-rows (reference label still 0, five votes to
/// four) a single removal flips the majority — naively carrying
/// `Robust(1)` across the append would certify a falsehood. The transfer
/// drops the bound instead.
#[test]
fn naive_append_transfer_would_be_unsound() {
    use antidote::core::CertCache;
    use antidote::data::DatasetDelta;

    let rows: Vec<(Vec<f64>, ClassId)> = (0..6)
        .map(|v| (vec![v as f64], u16::from(v == 5)))
        .collect();
    let ds0 = Dataset::from_rows(Schema::real(1, 2), &rows).unwrap();
    let x = vec![2.0];
    let certifier = Certifier::new(&ds0).depth(0);
    let ctx = ExecContext::sequential();
    let cache0 = CertCache::for_dataset(&ds0, 1);
    let out = certifier.certify_cached(&x, 1, 0, &cache0, &ctx).unwrap();
    assert!(out.is_robust(), "5-vs-1 majority is robust to one removal");

    let mut delta = DatasetDelta::new();
    for v in [6.0, 7.0, 8.0, 9.0] {
        delta.append(&[v], 1);
    }
    let (ds1, summary) = ds0.apply_summarized(&delta).unwrap();
    let cache1 = cache0.transfer(&summary, &ds1, ctx.metrics());
    assert!(
        cache1.transferred_lookup(0, 1).is_none(),
        "appends must not carry Robust bounds"
    );
    // And rightly so: on the appended dataset a single removal breaks
    // the prediction, so the carried certificate would have been wrong.
    let truth = enumerate_robustness(&ds1, &x, 0, 1, 1 << 22);
    assert!(
        !truth.is_robust(),
        "ground truth must refute Robust(1) on the appended dataset: {truth:?}"
    );
}

/// Transfer-on/off differential: over random tiny instances and
/// pure-removal scripts, `drift_sweep` must produce bit-identical ladders
/// (rung identities and verified counts) whether certificates are carried
/// across epochs or every epoch starts cold — the transfer changes cost,
/// never verdicts.
#[test]
fn drift_transfer_differential_is_bit_identical() {
    use antidote::core::{drift_sweep, DriftConfig, SweepConfig};
    use antidote::data::DatasetDelta;
    use rand::seq::SliceRandom;

    let mut rng = StdRng::seed_from_u64(421);
    let mut transferred = 0u64;
    for trial in 0..30 {
        let ds = {
            let mut ds = random_dataset(&mut rng);
            while !(4..=8).contains(&ds.len()) {
                ds = random_dataset(&mut rng);
            }
            ds
        };
        let depth = rng.random_range(0..=2usize);
        let xs: Vec<Vec<f64>> = (0..2)
            .map(|_| {
                (0..ds.n_features())
                    .map(|_| rng.random_range(0..5) as f64)
                    .collect()
            })
            .collect();
        // Two single-removal epochs over shuffled victims.
        let mut victims: Vec<u32> = (0..ds.len() as u32).collect();
        victims.shuffle(&mut rng);
        let deltas: Vec<DatasetDelta> = victims[..2]
            .iter()
            .map(|&v| {
                let mut d = DatasetDelta::new();
                d.remove(v);
                d
            })
            .collect();
        for domain in DOMAINS {
            let mk = |transfer| DriftConfig {
                sweep: SweepConfig {
                    depth,
                    domain,
                    timeout: None,
                    max_live_disjuncts: None,
                    threads: 1,
                    max_n: Some(3.min(ds.len() - 2)),
                    ..SweepConfig::default()
                },
                transfer,
            };
            let on = drift_sweep(&ds, &xs, &deltas, &mk(true)).unwrap();
            let off = drift_sweep(&ds, &xs, &deltas, &mk(false)).unwrap();
            assert_eq!(on.len(), off.len());
            for (a, b) in on.iter().zip(&off) {
                assert_eq!(
                    a.ladder_key(),
                    b.ladder_key(),
                    "trial {trial} {domain:?} epoch {}: transfer changed verdicts \
                     (|T|={}, depth={depth}, victims {victims:?})",
                    a.epoch,
                    ds.len(),
                );
                assert_eq!(b.metrics.cache_transfers, 0);
            }
            transferred += on.iter().map(|r| r.metrics.cache_transfers).sum::<u64>();
        }
    }
    assert!(
        transferred > 0,
        "no certificates ever transferred; differential is vacuous"
    );
}

/// Using a cache stamped for one epoch against another is a hard error in
/// *every* build profile — this file runs under `--release` in CI, where
/// `debug_assert!` is compiled out, so this is the regression test that
/// the guard survives release codegen.
#[test]
fn stale_caches_are_rejected_in_release_builds() {
    use antidote::core::CertCache;
    use antidote::data::DatasetDelta;

    let ds = Dataset::from_rows(
        Schema::real(1, 2),
        &[
            (vec![0.0], 0),
            (vec![1.0], 0),
            (vec![2.0], 1),
            (vec![3.0], 1),
        ],
    )
    .unwrap();
    let cache = CertCache::for_dataset(&ds, 1);
    let mutated = ds.apply(DatasetDelta::new().remove(0)).unwrap();
    let err = Certifier::new(&mutated)
        .depth(1)
        .certify_cached(&[1.5], 1, 0, &cache, &ExecContext::sequential())
        .unwrap_err();
    assert_eq!(err.cache_epoch, 0);
    assert_eq!(err.dataset_epoch, 1);
    // Re-keying for the mutated dataset restores service.
    let fresh = CertCache::for_dataset(&mutated, 1);
    assert!(Certifier::new(&mutated)
        .depth(1)
        .certify_cached(&[1.5], 1, 0, &fresh, &ExecContext::sequential())
        .is_ok());
}

/// The reference label reported by the certifier always matches the
/// concrete learner, for every domain and verdict.
#[test]
fn reference_labels_are_concrete() {
    let mut rng = StdRng::seed_from_u64(414);
    for _ in 0..80 {
        let ds = random_dataset(&mut rng);
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let concrete = dtrace(&ds, &Subset::full(&ds), &x, depth).label;
        for domain in DOMAINS {
            let out = Certifier::new(&ds)
                .depth(depth)
                .domain(domain)
                .certify(&x, 1);
            assert_eq!(out.label, concrete);
        }
    }
}
