//! End-to-end soundness: the abstract learner versus exhaustive ground
//! truth on small random instances.
//!
//! These are the repository's most important tests. They check, across
//! random datasets, inputs, depths, budgets, and all three domains:
//!
//! 1. **Theorem 4.11** — every concrete run's final training-set fragment
//!    is covered by some terminal abstract state of `DTrace#`;
//! 2. **Corollary 4.12** — whenever the prover answers *Robust*, exact
//!    enumeration over `Δn(T)` confirms that no removal set changes the
//!    prediction (and conversely, any enumeration counterexample forbids
//!    a Robust verdict);
//! 3. the greedy attack can never break a certified input.

use antidote::core::engine::ExecContext;
use antidote::core::learner::{run_abstract, DomainKind};
use antidote::data::{ClassId, Dataset, Schema, Subset};
use antidote::domains::{AbstractSet, CprobTransformer};
use antidote::prelude::*;
use antidote::tree::dtrace::dtrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random dataset: ≤ 10 rows, 1–2 features, 2–3 classes, values on
/// a small integer grid so ties and duplicate values are common (the nasty
/// cases for tie-breaking and trivial-split handling).
fn random_dataset(rng: &mut StdRng) -> Dataset {
    let len = rng.random_range(2..=10usize);
    let d = rng.random_range(1..=2usize);
    let k = rng.random_range(2..=3usize);
    let rows: Vec<(Vec<f64>, ClassId)> = (0..len)
        .map(|_| {
            (
                (0..d).map(|_| rng.random_range(0..5) as f64).collect(),
                rng.random_range(0..k) as ClassId,
            )
        })
        .collect();
    Dataset::from_rows(Schema::real(d, k), &rows).expect("valid random rows")
}

/// Every subset of `0..len` whose complement has size ≤ n, as index lists.
fn all_concretizations(len: usize, n: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for mask in 0u32..(1 << len) {
        let kept: Vec<u32> = (0..len as u32).filter(|i| mask & (1 << i) != 0).collect();
        if len - kept.len() <= n && !kept.is_empty() {
            out.push(kept);
        }
    }
    out
}

const DOMAINS: [DomainKind; 3] = [
    DomainKind::Box,
    DomainKind::Disjuncts,
    DomainKind::Hybrid { max_disjuncts: 3 },
];

/// Theorem 4.11: for all T' ∈ γ(⟨T,n⟩), the final concrete fragment of
/// DTrace(T', x) lies in γ of some terminal abstract state.
#[test]
fn theorem_4_11_terminal_coverage() {
    let mut rng = StdRng::seed_from_u64(411);
    for trial in 0..120 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(0..ds.len());
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        for domain in DOMAINS {
            let out = run_abstract(
                &ds,
                AbstractSet::full(&ds, n),
                &x,
                depth,
                domain,
                CprobTransformer::Optimal,
                true,
                true,
                true,
                &ExecContext::sequential(),
            );
            assert!(out.aborted.is_none());
            for kept in all_concretizations(ds.len(), n) {
                let t_prime = Subset::from_indices(&ds, kept);
                let conc = dtrace(&ds, &t_prime, &x, depth);
                let covered = out.terminals.iter().any(|t| t.concretizes(&conc.final_set));
                assert!(
                    covered,
                    "trial {trial} {domain:?}: concrete final fragment {:?} \
                     not covered by any terminal (|T|={}, n={n}, depth={depth})",
                    conc.final_set.indices(),
                    ds.len(),
                );
            }
        }
    }
}

/// Corollary 4.12 + exact enumeration: Robust verdicts are never wrong.
#[test]
fn robust_verdicts_match_enumeration() {
    let mut rng = StdRng::seed_from_u64(412);
    let mut proven = 0usize;
    for _ in 0..150 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(0..ds.len());
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let truth = enumerate_robustness(&ds, &x, depth, n, 1 << 22);
        for domain in DOMAINS {
            let out = Certifier::new(&ds)
                .depth(depth)
                .domain(domain)
                .certify(&x, n);
            if out.is_robust() {
                proven += 1;
                assert!(
                    truth.is_robust(),
                    "{domain:?} claimed robust but enumeration found {truth:?} \
                     (|T|={}, n={n}, depth={depth}, x={x:?})",
                    ds.len(),
                );
            }
        }
    }
    // The prover must actually prove something across 450 attempts,
    // otherwise this test is vacuous.
    assert!(
        proven > 50,
        "only {proven} robust verdicts; prover too weak"
    );
}

/// The greedy attack is a concrete counterexample generator: it can never
/// succeed at a budget the prover certified.
#[test]
fn attacks_never_break_certificates() {
    let mut rng = StdRng::seed_from_u64(413);
    for _ in 0..100 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(1..ds.len());
        let depth = rng.random_range(1..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let attack = greedy_attack(&ds, &x, depth, n);
        if attack.succeeded() {
            for domain in DOMAINS {
                let out = Certifier::new(&ds)
                    .depth(depth)
                    .domain(domain)
                    .certify(&x, attack.removals());
                assert!(
                    !out.is_robust(),
                    "{domain:?} certified n={} but attack removed {:?}",
                    attack.removals(),
                    attack.removed,
                );
            }
        }
    }
}

/// The label-flip extension's Robust verdicts are never wrong: exact
/// enumeration of every ≤ n-flip relabeling confirms them.
#[test]
fn flip_verdicts_match_flip_enumeration() {
    use antidote::baselines::enumerate_flip_robustness;
    use antidote::core::flip::certify_label_flips;

    let mut rng = StdRng::seed_from_u64(415);
    let mut proven = 0usize;
    for _ in 0..120 {
        let ds = random_dataset(&mut rng);
        let n = rng.random_range(0..=2usize.min(ds.len()));
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let out = certify_label_flips(&ds, &x, depth, n, &ExecContext::sequential());
        if out.is_robust() {
            proven += 1;
            let truth = enumerate_flip_robustness(&ds, &x, depth, n, 1 << 22);
            assert!(
                truth.is_robust(),
                "flip prover claimed robust but enumeration found {truth:?} \
                 (|T|={}, n={n}, depth={depth}, x={x:?})",
                ds.len(),
            );
        }
    }
    assert!(
        proven > 20,
        "only {proven} flip certificates; prover too weak"
    );
}

/// Brute-force soundness oracle for the *cached* certification path: on
/// tiny datasets (≤ 8 rows) and budgets `n ≤ 3`, every `Robust` verdict a
/// [`CertCache`]-backed probe returns — whether freshly derived, resumed
/// incrementally, or answered by a monotone/witness short-circuit — is
/// checked against exhaustive enumeration of all ≤ n-row removals with
/// concrete retraining. Probes run in a shuffled budget order so the
/// interval short-circuits actually fire; every answer must also equal
/// the fresh certifier's.
#[test]
fn cached_robust_verdicts_survive_the_brute_force_oracle() {
    use antidote::core::CertCache;
    use rand::seq::SliceRandom;

    let mut rng = StdRng::seed_from_u64(416);
    let mut proven = 0usize;
    let mut shortcircuits = 0u64;
    for trial in 0..120 {
        let ds = {
            // Cap at 8 rows so the oracle's 2^|T| enumeration stays tiny.
            let mut ds = random_dataset(&mut rng);
            while ds.len() > 8 {
                ds = random_dataset(&mut rng);
            }
            ds
        };
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let mut budgets: Vec<usize> = (0..=3.min(ds.len() - 1)).collect();
        budgets.shuffle(&mut rng);
        for domain in DOMAINS {
            // Hybrid merge order is not provably monotone in n, so its
            // interval short-circuits are exercised by the in-order
            // ladder only (matching how the sweep probes it).
            let mut order = budgets.clone();
            if matches!(domain, DomainKind::Hybrid { .. }) {
                order.sort_unstable();
            }
            let certifier = Certifier::new(&ds).depth(depth).domain(domain);
            let cache = CertCache::new(1);
            let ctx = ExecContext::sequential();
            for &n in &order {
                let out = certifier.certify_cached(&x, n, 0, &cache, &ctx);
                assert_eq!(
                    out.verdict,
                    certifier.certify(&x, n).verdict,
                    "trial {trial} {domain:?}: cached diverged at n={n} (order {order:?})",
                );
                if !out.is_robust() {
                    continue;
                }
                proven += 1;
                let reference = dtrace(&ds, &Subset::full(&ds), &x, depth).label;
                for kept in all_concretizations(ds.len(), n) {
                    let poisoned = Subset::from_indices(&ds, kept);
                    let retrained = dtrace(&ds, &poisoned, &x, depth).label;
                    assert_eq!(
                        retrained,
                        reference,
                        "trial {trial} {domain:?}: cached Robust at n={n} contradicted by \
                         removing {:?} (|T|={}, depth={depth})",
                        poisoned.indices(),
                        ds.len(),
                    );
                }
            }
            shortcircuits += ctx.metrics().cache_shortcircuits();
        }
    }
    assert!(
        proven > 80,
        "only {proven} robust verdicts; oracle is vacuous"
    );
    assert!(
        shortcircuits > 50,
        "only {shortcircuits} short-circuits; the cached path was barely exercised"
    );
}

/// The cached sweep's per-rung `verified` counts agree with fresh
/// per-point certification on tiny datasets — the ladder-level view of
/// the oracle above, including the witness search the sweep triggers
/// before binary-search refinement.
#[test]
fn cached_sweep_rungs_match_fresh_certification() {
    use antidote::core::{sweep_in, SweepConfig};

    let mut rng = StdRng::seed_from_u64(417);
    for _ in 0..40 {
        let ds = random_dataset(&mut rng);
        let depth = rng.random_range(0..=2usize);
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                (0..ds.n_features())
                    .map(|_| rng.random_range(0..5) as f64)
                    .collect()
            })
            .collect();
        for domain in DOMAINS {
            let cfg = SweepConfig {
                depth,
                domain,
                timeout: None,
                max_live_disjuncts: None,
                threads: 1,
                max_n: Some(3.min(ds.len())),
                ..SweepConfig::default()
            };
            let ctx = ExecContext::sequential();
            let ladder = sweep_in(&ds, &xs, &cfg, &ctx);
            let certifier = Certifier::new(&ds).depth(depth).domain(domain);
            // Survivor pools are implied by fresh per-point frontiers.
            let mut survivors: Vec<usize> = (0..xs.len()).collect();
            for p in &ladder {
                let fresh_verified = survivors
                    .iter()
                    .filter(|&&i| certifier.certify(&xs[i], p.n).is_robust())
                    .count();
                assert!(
                    p.verified <= p.attempted,
                    "{domain:?}: malformed rung {p:?}"
                );
                if p.attempted == survivors.len() {
                    // A full-pool rung: the cached count must equal fresh
                    // per-point certification exactly.
                    assert_eq!(
                        p.verified, fresh_verified,
                        "{domain:?} at n={}: cached sweep diverged from fresh \
                         certification",
                        p.n,
                    );
                    survivors.retain(|&i| certifier.certify(&xs[i], p.n).is_robust());
                } else {
                    // A binary-search probe over a sub-pool: its verified
                    // count is bounded by the fresh count over the pool.
                    assert!(
                        p.verified <= fresh_verified,
                        "{domain:?} at n={}: cached sweep verified {} but fresh \
                         certification only verifies {fresh_verified}",
                        p.n,
                        p.verified,
                    );
                }
            }
        }
    }
}

/// The reference label reported by the certifier always matches the
/// concrete learner, for every domain and verdict.
#[test]
fn reference_labels_are_concrete() {
    let mut rng = StdRng::seed_from_u64(414);
    for _ in 0..80 {
        let ds = random_dataset(&mut rng);
        let depth = rng.random_range(0..=3usize);
        let x: Vec<f64> = (0..ds.n_features())
            .map(|_| rng.random_range(0..5) as f64)
            .collect();
        let concrete = dtrace(&ds, &Subset::full(&ds), &x, depth).label;
        for domain in DOMAINS {
            let out = Certifier::new(&ds)
                .depth(depth)
                .domain(domain)
                .certify(&x, 1);
            assert_eq!(out.label, concrete);
        }
    }
}
