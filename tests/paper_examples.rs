//! Cross-crate checks of every worked example printed in the paper.
//!
//! Each test cites the example it reproduces; together they pin the
//! implementation to the paper's concrete and abstract semantics.

use antidote::data::{synth, Subset};
use antidote::domains::{AbstractSet, CprobTransformer, Interval};
use antidote::prelude::*;
use antidote::tree::predicate::candidate_predicates;
use antidote::tree::split::{best_split, gini, score_split};
use antidote::tree::Predicate;

const EPS: f64 = 1e-9;

/// Example 3.4: scores and probabilities of the x ≤ 10 split.
#[test]
fn example_3_4_scores() {
    let ds = synth::figure2();
    let full = Subset::full(&ds);
    let phi = Predicate {
        feature: 0,
        threshold: 10.5,
    };
    let (le, gt) = full.partition(&ds, |r| phi.eval_row(&ds, r));
    assert_eq!(le.len(), 9);
    assert_eq!(gt.len(), 4);
    assert_eq!(
        antidote::tree::cprob(le.class_counts()),
        vec![7.0 / 9.0, 2.0 / 9.0]
    );
    assert_eq!(antidote::tree::cprob(gt.class_counts()), vec![0.0, 1.0]);
    assert!((gini(le.class_counts()) - 0.35).abs() < 0.01);
    assert_eq!(gini(gt.class_counts()), 0.0);
    assert!((score_split(&ds, &full, &phi) - 3.1).abs() < 0.02);
}

/// Example 3.5: DTrace(T, 18) ends in (T↓x>10, x ≤ 10, [x > 10]) and
/// classifies black.
#[test]
fn example_3_5_dtrace() {
    let ds = synth::figure2();
    let r = dtrace(&ds, &Subset::full(&ds), &[18.0], 1);
    assert_eq!(r.label, 1);
    assert_eq!(r.probs, vec![0.0, 1.0]);
    assert_eq!(r.final_set.len(), 4);
    assert_eq!(r.steps.len(), 1);
    assert_eq!(r.steps[0].predicate.threshold, 10.5);
    assert!(!r.steps[0].satisfied);
}

/// Example 4.3: joins of abstract training sets.
#[test]
fn example_4_3_joins() {
    let ds = synth::figure2();
    let t1 = Subset::from_indices(&ds, vec![0, 1, 2, 3, 4]);
    let a = AbstractSet::new(t1.clone(), 2).join(&ds, &AbstractSet::new(t1, 3));
    assert_eq!((a.len(), a.n()), (5, 3));
}

/// Example 4.6: cprob# on the left branch — the natural transformer loses
/// the 5/7 lower bound to 5/9; the optimal transformer recovers it.
#[test]
fn example_4_6_cprob() {
    let ds = synth::figure2();
    let left = AbstractSet::new(Subset::from_indices(&ds, (0..9).collect()), 2);
    let nat = left.cprob_intervals(CprobTransformer::Natural);
    assert!((nat[0].lb() - 5.0 / 9.0).abs() < EPS);
    assert_eq!(nat[0].ub(), 1.0);
    let opt = left.cprob_intervals(CprobTransformer::Optimal);
    assert!((opt[0].lb() - 5.0 / 7.0).abs() < EPS);
    // §2 quotes the left-branch white probability as [0.71, 1].
    assert!((opt[0].lb() - 0.71).abs() < 0.01);
}

/// Example 4.8: filter#(⟨T, 2⟩, {x ≤ 10}, 4) = ⟨T↓x≤10, 2⟩.
#[test]
fn example_4_8_filter() {
    let ds = synth::figure2();
    let a = AbstractSet::full(&ds, 2);
    let phi = antidote::domains::AbsPredicate::Concrete(Predicate {
        feature: 0,
        threshold: 10.5,
    });
    // Input 4 satisfies x ≤ 10, so Ψ¬x is empty and the result is the
    // positive restriction alone.
    let r = phi.restrict(&ds, &a);
    assert_eq!((r.len(), r.n()), (9, 2));
}

/// Example 5.1: the dynamically-constructed threshold set ΦR.
#[test]
fn example_5_1_candidate_thresholds() {
    let ds = synth::figure2();
    let preds = candidate_predicates(&ds, &Subset::full(&ds));
    let taus: Vec<f64> = preds.iter().map(|p| p.threshold).collect();
    // τ ∈ {1/2, 3/2, 5/2, 7/2, 11/2, 15/2, 17/2, 19/2, 21/2, 23/2, 25/2, 27/2}.
    let expected: Vec<f64> = [
        1.0, 3.0, 5.0, 7.0, 11.0, 15.0, 17.0, 19.0, 21.0, 23.0, 25.0, 27.0,
    ]
    .iter()
    .map(|v| v / 2.0)
    .collect();
    assert_eq!(taus, expected);
}

/// Example 5.2: with n = 1 the threshold (3+7)/2 = 5 (for the case where
/// the value-4 element is dropped) must be representable; the symbolic
/// predicate x ≤ [4, 7) covers it.
#[test]
fn example_5_2_symbolic_coverage() {
    let ds = synth::figure2();
    let a = AbstractSet::full(&ds, 1);
    let cands = antidote::core::score::scored_candidates(&ds, &a, CprobTransformer::Optimal);
    let tau5 = Predicate {
        feature: 0,
        threshold: 5.0,
    };
    assert!(
        cands.iter().any(|c| c.pred.concretizes(&tau5)),
        "x ≤ 5 must be covered by some symbolic candidate"
    );
}

/// Example 5.3: the disjunctive domain's motivation — joining the two
/// filter branches T≤4 and T>3 loses massive precision (n jumps to 5).
#[test]
fn example_5_3_imprecise_join() {
    let ds = synth::figure2();
    let t = Subset::from_indices(&ds, (0..9).collect()); // {0..4, 7..10}
    let a = AbstractSet::new(t, 1);
    let le4 = a.restrict_where(&ds, |r| ds.value(r, 0) <= 4.0);
    let gt3 = a.restrict_where(&ds, |r| ds.value(r, 0) > 3.0);
    assert_eq!(le4.len(), 5);
    assert_eq!(gt3.len(), 5);
    let joined = le4.join(&ds, &gt3);
    // T' = T (the set we began with) and n' = 5.
    assert_eq!(joined.len(), 9);
    assert_eq!(joined.n(), 5);
}

/// Corollary 4.12's dominance definition, and the §2 narrative: the left
/// branch's white interval [0.71, 1] dominates black's [0, 2/7].
#[test]
fn corollary_4_12_dominance() {
    let white = Interval::new(5.0 / 7.0, 1.0);
    let black = Interval::new(0.0, 2.0 / 7.0);
    assert!(white.strictly_above(&black));
    assert!(!black.strictly_above(&white));
    let ds = synth::figure2();
    let left = AbstractSet::new(Subset::from_indices(&ds, (0..9).collect()), 2);
    assert_eq!(
        antidote::core::verdict::dominant_class(&left.cprob_intervals(CprobTransformer::Optimal)),
        Some(0)
    );
}

/// §2's naive-enumeration count: proving the figure-2 example at n = 2
/// takes 92 = C(13,2) + C(13,1) + 1 retrained models, and the input really
/// is robust.
#[test]
fn section_2_naive_enumeration() {
    let ds = synth::figure2();
    match enumerate_robustness(&ds, &[5.0], 1, 2, 1_000) {
        antidote::baselines::EnumVerdict::Robust { models } => assert_eq!(models, 92),
        other => panic!("expected robust via 92 models, got {other:?}"),
    }
}

/// Footnote 1: predicates x ≤ 4 and x ≤ 5 split figure2 identically.
#[test]
fn footnote_1_equivalent_predicates() {
    let ds = synth::figure2();
    let full = Subset::full(&ds);
    let s4 = full.filter(&ds, |r| ds.value(r, 0) <= 4.0);
    let s5 = full.filter(&ds, |r| ds.value(r, 0) <= 5.0);
    assert_eq!(s4, s5);
}

/// The depth-1 learner on figure2 picks x ≤ 10 (the §2 narrative) — and
/// it is the unique best split.
#[test]
fn section_2_best_split() {
    let ds = synth::figure2();
    let full = Subset::full(&ds);
    let best = best_split(&ds, &full).unwrap();
    assert_eq!(
        best.predicate,
        Predicate {
            feature: 0,
            threshold: 10.5
        }
    );
    for p in candidate_predicates(&ds, &full) {
        if p != best.predicate {
            assert!(score_split(&ds, &full, &p) > best.score - EPS);
        }
    }
}
