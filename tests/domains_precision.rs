//! Relative precision of the abstract domains (§5.2, §6.3).
//!
//! The paper's claims, checked empirically: the disjunctive domain is at
//! least as precise as Box by construction; the Hybrid extension sits
//! between them; the optimal `cprob#` transformer is at least as precise
//! as the natural one.

use antidote::data::synth::{self, BlobSpec};
use antidote::domains::CprobTransformer;
use antidote::prelude::*;

fn blobs(sep: f64, per_class: usize, seed: u64) -> antidote::data::Dataset {
    synth::gaussian_blobs(
        &BlobSpec {
            means: vec![vec![0.0, 0.0], vec![sep, sep * 0.5]],
            stds: vec![vec![1.0, 1.5], vec![1.0, 1.5]],
            per_class,
            quantum: Some(0.1),
        },
        seed,
    )
}

/// Probe grid: a few inputs at varying distance from the boundary.
fn probes(sep: f64) -> Vec<Vec<f64>> {
    vec![
        vec![0.0, 0.0],
        vec![sep, sep * 0.5],
        vec![sep * 0.4, sep * 0.2],
        vec![-1.0, 2.0],
        vec![sep + 1.0, 0.0],
    ]
}

#[test]
fn disjuncts_prove_everything_box_proves() {
    for seed in 0..4u64 {
        let ds = blobs(8.0, 60, seed);
        for depth in 1..=2 {
            for n in [1usize, 4, 8, 16] {
                for x in probes(8.0) {
                    let box_out = Certifier::new(&ds)
                        .depth(depth)
                        .domain(DomainKind::Box)
                        .certify(&x, n);
                    if box_out.is_robust() {
                        let dis = Certifier::new(&ds)
                            .depth(depth)
                            .domain(DomainKind::Disjuncts)
                            .certify(&x, n);
                        assert!(
                            dis.is_robust(),
                            "Box proved but Disjuncts failed (seed {seed}, depth \
                             {depth}, n {n}, x {x:?})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn hybrid_interpolates_between_box_and_disjuncts() {
    // A large hybrid budget behaves like Disjuncts; on instances Box
    // proves, every hybrid budget must prove too (hybrid joins strictly
    // less than Box does).
    let ds = blobs(8.0, 60, 1);
    for n in [1usize, 4, 8] {
        for x in probes(8.0) {
            let box_ok = Certifier::new(&ds)
                .depth(2)
                .domain(DomainKind::Box)
                .certify(&x, n)
                .is_robust();
            let dis_ok = Certifier::new(&ds)
                .depth(2)
                .domain(DomainKind::Disjuncts)
                .certify(&x, n)
                .is_robust();
            for k in [1usize, 4, 1 << 20] {
                let hy = Certifier::new(&ds)
                    .depth(2)
                    .domain(DomainKind::Hybrid { max_disjuncts: k })
                    .certify(&x, n)
                    .is_robust();
                if box_ok {
                    assert!(
                        hy,
                        "hybrid({k}) lost a Box-provable instance (n {n}, x {x:?})"
                    );
                }
                if k >= 1 << 20 {
                    assert_eq!(
                        hy, dis_ok,
                        "an unconstrained hybrid must match Disjuncts (n {n}, x {x:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn optimal_transformer_is_at_least_as_strong() {
    let ds = blobs(6.0, 60, 2);
    let mut nat_proven = 0usize;
    let mut opt_proven = 0usize;
    for n in [1usize, 2, 4, 8, 16] {
        for x in probes(6.0) {
            let base = Certifier::new(&ds).depth(2).domain(DomainKind::Disjuncts);
            let nat = base
                .clone()
                .transformer(CprobTransformer::Natural)
                .certify(&x, n)
                .is_robust();
            let opt = base
                .transformer(CprobTransformer::Optimal)
                .certify(&x, n)
                .is_robust();
            nat_proven += nat as usize;
            opt_proven += opt as usize;
            assert!(
                !nat || opt,
                "natural proved but optimal failed (n {n}, x {x:?}) — optimal \
                 intervals are subsets, so this must be impossible"
            );
        }
    }
    assert!(opt_proven >= nat_proven);
    assert!(
        opt_proven > 0,
        "the comparison is vacuous if nothing proves"
    );
}

#[test]
fn certified_budgets_grow_with_margin() {
    // Wider class separation → provable at larger n (the shape underlying
    // all of the paper's figures: robustness certificates track margins).
    let probe = vec![0.0, 0.0];
    let mut last = 0usize;
    for (sep, floor) in [(3.0, 0usize), (8.0, 2), (16.0, 4)] {
        let ds = blobs(sep, 60, 3);
        let c = Certifier::new(&ds).depth(1).domain(DomainKind::Disjuncts);
        let mut best = 0usize;
        for n in 1..=24 {
            if c.certify(&probe, n).is_robust() {
                best = n;
            }
        }
        assert!(
            best >= floor.max(last),
            "separation {sep}: certified {best}, expected >= {}",
            floor.max(last)
        );
        last = best;
    }
}
